"""Access-path selection: predicate/projection pushdown into scans.

This pass runs after join reordering on every planned alternative
(canonical and unnested alike).  It walks the plan DAG — including the
plans nested inside subquery expressions — and rewrites

* ``Select(Scan)`` into :class:`~repro.algebra.ops.IndexScan` when one
  conjunct is an indexable comparison ``col op expr`` with ``col`` a
  column of the scanned table and ``expr`` free of that table's
  attributes (a literal, a parameter, or a *correlation* attribute — the
  equality-correlation hot path of Eqv. 1 and Eqv. 4).  Every remaining
  conjunct is pushed along as the scan's residual predicate, and the
  column requirements collected from enclosing Project/GroupBy nodes
  narrow the scan's output schema;
* ``Join(left, Scan)`` into :class:`~repro.algebra.ops.IndexNLJoin`
  when the right table has a hash index on an equi-join key and probing
  per left row is estimated cheaper than building a fresh hash table.

The pass is **identity-preserving by construction**: when no referenced
table carries an index the input plan object is returned unchanged, so
plans (and their golden explain signatures) are byte-identical to the
seed planner's output unless the user actually created indexes.
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace

from repro.algebra import expr as E
from repro.algebra import ops as L
from repro.algebra.aggregates import STAR
from repro.optimizer.cardinality import CardinalityModel
from repro.optimizer.cost import C_HASH_BUILD, C_HASH_PROBE, C_PRED
from repro.storage.catalog import Catalog

#: Comparison operators an index can serve, by index kind.
_HASH_OPS = ("=",)
_SORTED_OPS = ("=", "<", "<=", ">", ">=")

#: Preference order for candidate key predicates: selective equality on a
#: hash index beats equality on a sorted index beats a range probe.
_SCORE_HASH_EQ = 0
_SCORE_SORTED_EQ = 1
_SCORE_SORTED_RANGE = 2

_RANGE_MIRROR = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def choose_access_paths(plan: L.Operator, catalog: Catalog) -> L.Operator:
    """Rewrite ``plan`` to use index access paths where profitable.

    Returns the *same object* when nothing applies (in particular when no
    table referenced by the plan has any index).
    """
    if not _plan_touches_indexes(plan, catalog):
        return plan
    cards = CardinalityModel(catalog)
    cards._harvest_stats(plan)
    return _Rewriter(catalog, cards).rewrite(plan, None)


def _plan_touches_indexes(plan: L.Operator, catalog: Catalog) -> bool:
    stack = [plan]
    seen: set[int] = set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, L.Scan) and catalog.indexes_on(node.table_name):
            return True
        stack.extend(node.children())
        stack.extend(node.subquery_plans())
    return False


class _Rewriter:
    """One rewrite walk; memoised so DAG sharing (bypass taps) survives."""

    def __init__(self, catalog: Catalog, cards: CardinalityModel):
        self.catalog = catalog
        self.cards = cards
        self._memo: dict[tuple[int, frozenset[str] | None], L.Operator] = {}

    # -- driver ------------------------------------------------------------

    def rewrite(self, node: L.Operator, required: frozenset[str] | None) -> L.Operator:
        key = (id(node), required)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = self._rewrite(node, required)
        self._memo[key] = result
        return result

    def _rewrite(self, node: L.Operator, required: frozenset[str] | None) -> L.Operator:
        if isinstance(node, L.StreamTap):
            bypass = self.rewrite(node.child, None)
            if bypass is node.child:
                return node
            return bypass.positive if node.positive_stream else bypass.negative
        if isinstance(node, L.Select):
            return self._rewrite_select(node, required)
        if type(node) is L.Join:
            return self._rewrite_join(node)
        if isinstance(node, L.Project):
            child = self.rewrite(node.child, frozenset(node.names))
            if child is node.child:
                return node
            return L.Project(child, node.names)
        if isinstance(node, (L.GroupBy, L.ScalarAggregate)):
            return self._rewrite_aggregate(node)
        return self._rewrite_generic(node)

    # -- generic rebuilds --------------------------------------------------

    def _rewrite_generic(self, node: L.Operator) -> L.Operator:
        children = node.children()
        new_children = [self.rewrite(child, None) for child in children]
        if any(new is not old for new, old in zip(new_children, children)):
            node = node.replace_children(new_children)
        return self._rewrite_node_exprs(node)

    def _rewrite_aggregate(self, node: L.Operator) -> L.Operator:
        required = self._aggregate_required(node)
        child = self.rewrite(node.children()[0], required)
        if child is node.children()[0]:
            return node
        return node.replace_children([child])

    @staticmethod
    def _aggregate_required(node: L.Operator) -> frozenset[str] | None:
        needed: set[str] = set(getattr(node, "keys", ()))
        for spec in node.agg_specs():
            if spec.arg is STAR:
                # COUNT(*) / COUNT(DISTINCT *) consume whole tuples — the
                # child may not be narrowed.
                return None
            needed.update(spec.free_attrs())
        return frozenset(needed)

    # -- subquery plans ----------------------------------------------------

    def _rewrite_node_exprs(self, node: L.Operator) -> L.Operator:
        """Rewrite plans nested in subquery expressions of the subscript."""
        if isinstance(node, (L.Select, L.BypassSelect)):
            predicate = self._rewrite_expr(node.predicate)
            if predicate is not node.predicate:
                return type(node)(node.child, predicate)
        elif isinstance(node, L.Map):
            expression = self._rewrite_expr(node.expression)
            if expression is not node.expression:
                return L.Map(node.child, node.name, expression)
        elif type(node) in (L.Join, L.LeftOuterJoin, L.SemiJoin, L.AntiJoin, L.BypassJoin):
            predicate = self._rewrite_expr(node.predicate)
            if predicate is not node.predicate:
                if type(node) is L.LeftOuterJoin:
                    return L.LeftOuterJoin(node.left, node.right, predicate, node.defaults)
                return type(node)(node.left, node.right, predicate)
        return node

    def _rewrite_expr(self, expression: E.Expr) -> E.Expr:
        rewritten = expression
        if isinstance(expression, E.SubqueryExpr):
            plan = self.rewrite(expression.plan, None)
            if plan is not expression.plan:
                rewritten = dataclass_replace(rewritten, plan=plan)
        children = rewritten.children()
        if children:
            new_children = [self._rewrite_expr(child) for child in children]
            if any(new is not old for new, old in zip(new_children, children)):
                rewritten = rewritten.replace_children(tuple(new_children))
        return rewritten

    # -- Select(Scan) → IndexScan -----------------------------------------

    def _rewrite_select(self, node: L.Select, required: frozenset[str] | None) -> L.Operator:
        predicate = self._rewrite_expr(node.predicate)
        child = node.child
        if type(child) is L.Scan and child.table_name in self.catalog:
            index_scan = self._try_index_scan(child, predicate, required)
            if index_scan is not None:
                return index_scan
        new_child = self.rewrite(child, None)
        if new_child is child and predicate is node.predicate:
            return node
        return L.Select(new_child, predicate)

    def _try_index_scan(
        self,
        scan: L.Scan,
        predicate: E.Expr,
        required: frozenset[str] | None,
    ) -> L.IndexScan | None:
        indexes = self.catalog.indexes_on(scan.table_name)
        if not indexes:
            return None
        scan_attrs = frozenset(scan.schema.names)
        base_names = self.catalog.table(scan.table_name).schema.names
        by_base = {base: position for position, base in enumerate(base_names)}
        conjunct_list = E.conjuncts(predicate)

        best = None
        for position, conjunct in enumerate(conjunct_list):
            candidate = self._key_candidate(conjunct, scan_attrs)
            if candidate is None:
                continue
            op, key_attr, bound_expr = candidate
            base_column = base_names[scan.schema.position(key_attr)]
            for index in indexes:
                allowed = _HASH_OPS if index.kind == "hash" else _SORTED_OPS
                if index.column != base_column or op not in allowed:
                    continue
                if op == "=":
                    score = _SCORE_HASH_EQ if index.kind == "hash" else _SCORE_SORTED_EQ
                else:
                    score = _SCORE_SORTED_RANGE
                if best is None or score < best[0]:
                    best = (score, position, index, op, key_attr, bound_expr)
        if best is None:
            return None
        _, chosen, index, op, key_attr, bound_expr = best

        bounds = [(op, bound_expr)]
        residual_list = [c for i, c in enumerate(conjunct_list) if i != chosen]
        if op in _RANGE_MIRROR:
            # Merge a complementary bound on the same key (the shape a SQL
            # BETWEEN lowers to) so the zone maps prune from both sides.
            wanted_direction = "<" if op.startswith(">") else ">"
            for position, conjunct in enumerate(residual_list):
                candidate = self._key_candidate(conjunct, scan_attrs)
                if candidate is None or candidate[1] != key_attr:
                    continue
                if candidate[0].startswith(wanted_direction):
                    bounds.append((candidate[0], candidate[2]))
                    del residual_list[position]
                    break

        residual = E.conjunction(residual_list) if residual_list else None
        if residual == E.TRUE:
            residual = None

        projection = None
        schema = scan.schema
        if required is not None:
            needed = set(required) & scan_attrs
            needed.add(key_attr)  # keep key stats and explain output honest
            if residual is not None:
                needed.update(residual.free_attrs() & scan_attrs)
            positions = [
                position
                for position, name in enumerate(scan.schema.names)
                if name in needed
            ]
            if positions and len(positions) < len(scan.schema.names):
                projection = tuple(positions)
                schema = scan.schema.project(
                    [scan.schema.names[position] for position in positions]
                )

        return L.IndexScan(
            scan.table_name,
            schema,
            scan.qualifier,
            index.name,
            index.kind,
            key_attr,
            tuple(bounds),
            residual,
            projection,
            tuple(scan.schema.names),
        )

    @staticmethod
    def _key_candidate(
        conjunct: E.Expr, scan_attrs: frozenset[str]
    ) -> tuple[str, str, E.Expr] | None:
        """Normalise ``conjunct`` to ``(op, key_attr, bound_expr)``.

        The key must be a bare column of this scan; the bound side must
        reference none of the scan's attributes (so it is evaluable from
        the environment before touching any row) and carry no subquery.
        """
        if not isinstance(conjunct, E.Comparison) or conjunct.op == "<>":
            return None
        for oriented in (conjunct, conjunct.mirrored()):
            left, right = oriented.left, oriented.right
            if not isinstance(left, E.ColumnRef) or left.name not in scan_attrs:
                continue
            if right.contains_subquery() or (right.free_attrs() & scan_attrs):
                continue
            return oriented.op, left.name, right
        return None

    # -- Join(left, Scan) → IndexNLJoin ------------------------------------

    def _rewrite_join(self, node: L.Join) -> L.Operator:
        predicate = self._rewrite_expr(node.predicate)
        left = self.rewrite(node.left, None)
        right = node.right
        if type(right) is L.Scan and right.table_name in self.catalog:
            probe = self._try_index_nl_join(node, left, right, predicate)
            if probe is not None:
                return probe
        new_right = self.rewrite(right, None)
        if left is node.left and new_right is right and predicate is node.predicate:
            return node
        return L.Join(left, new_right, predicate)

    def _try_index_nl_join(
        self,
        original: L.Join,
        left: L.Operator,
        right: L.Scan,
        predicate: E.Expr,
    ) -> L.IndexNLJoin | None:
        left_attrs = frozenset(original.left.schema.names)
        right_attrs = frozenset(right.schema.names)
        base_names = self.catalog.table(right.table_name).schema.names
        hash_columns = {
            index.column: index
            for index in self.catalog.indexes_on(right.table_name)
            if index.kind == "hash"
        }
        if not hash_columns:
            return None

        conjunct_list = E.conjuncts(predicate)
        for position, conjunct in enumerate(conjunct_list):
            if not (isinstance(conjunct, E.Comparison) and conjunct.op == "="):
                continue
            for oriented in (conjunct, conjunct.mirrored()):
                lexpr, rexpr = oriented.left, oriented.right
                if not (isinstance(lexpr, E.ColumnRef) and isinstance(rexpr, E.ColumnRef)):
                    continue
                if lexpr.name not in left_attrs or rexpr.name not in right_attrs:
                    continue
                base_column = base_names[right.schema.position(rexpr.name)]
                index = hash_columns.get(base_column)
                if index is None:
                    continue
                if not self._probe_beats_hash_join(original, right, rexpr.name):
                    return None
                residual_list = [c for i, c in enumerate(conjunct_list) if i != position]
                residual = E.conjunction(residual_list) if residual_list else None
                if residual == E.TRUE:
                    residual = None
                return L.IndexNLJoin(
                    left,
                    right,
                    predicate,
                    index.name,
                    index.kind,
                    lexpr.name,
                    rexpr.name,
                    residual,
                )
        return None

    def _probe_beats_hash_join(
        self, original: L.Join, right: L.Scan, right_key: str
    ) -> bool:
        left_rows = max(self.cards._card(original.left), 1.0)
        right_rows = max(self.cards._card(right), 1.0)
        distinct = self.cards.distinct_of(right_key) or 10.0
        matches_per_probe = max(right_rows / distinct, 1.0)
        hash_join = right_rows * C_PRED + C_HASH_BUILD * right_rows + C_HASH_PROBE * left_rows
        index_probe = left_rows * (C_HASH_PROBE + C_PRED * matches_per_probe)
        return index_probe < hash_join
