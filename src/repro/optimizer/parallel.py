"""Cost-based shard-parallel plan choice.

The vectorized compiler asks :func:`choose_workers` whether lowering an
operator to its shard-parallel variant is worth the fan-out overhead.
The decision is the classic one: estimated input rows (from the
System-R-style :class:`~repro.optimizer.cardinality.CardinalityModel`)
against a per-process break-even threshold.  Shipping a batch to a
worker costs a pickle round-trip plus scheduling latency, so small
inputs always stay serial — parallelising them would only add overhead
without any win.

The threshold is, in order of precedence:

1. ``EvalOptions.parallel_min_rows`` (per-query override),
2. the ``REPRO_PARALLEL_MIN_ROWS`` environment variable,
3. :data:`DEFAULT_MIN_ROWS`.
"""

from __future__ import annotations

import os

from repro.algebra import ops as L
from repro.optimizer.cardinality import CardinalityModel
from repro.storage.catalog import Catalog

#: Below this many estimated input rows a shard fan-out costs more in
#: serialisation than it recovers in parallel work.
DEFAULT_MIN_ROWS = 5000


def parallel_min_rows(options=None) -> int:
    """Resolve the break-even row threshold for parallel lowering."""
    override = getattr(options, "parallel_min_rows", None)
    if override is not None:
        return int(override)
    env = os.environ.get("REPRO_PARALLEL_MIN_ROWS", "").strip()
    if env:
        try:
            return int(env)
        except ValueError:
            pass
    return DEFAULT_MIN_ROWS


class _LiveCardinalityModel(CardinalityModel):
    """Cardinality model with base-table leaves anchored to live counts.

    Catalog statistics refresh only on explicit ``analyze``; a table
    grown by appends since its last analyze would estimate (near) zero
    and never parallelise.  The actual row count of a base table is an
    O(1) ``len``, so the parallel decision reads it directly — the
    statistics still drive every selectivity above the leaves.
    """

    def _card(self, node: L.Operator) -> float:
        if isinstance(node, L.Scan) and node.table_name in self.catalog:
            return float(len(self.catalog.table(node.table_name).rows))
        return super()._card(node)


def estimated_input_rows(node: L.Operator, catalog: Catalog) -> float:
    """Estimated rows *entering* ``node`` — the work a fan-out would split.

    For unary operators this is the child's output cardinality; for
    joins, the sum of both inputs; for leaves, the node's own estimate.
    """
    model = _LiveCardinalityModel(catalog)
    children = list(node.children())
    if not children:
        return model.cardinality(node)
    return float(sum(model.cardinality(child) for child in children))


def choose_workers(node: L.Operator, catalog: Catalog, options=None) -> int:
    """Shard count for ``node``, or ``0`` to keep it serial.

    Serial whenever workers are not configured (``parallel_workers`` <
    2) or the estimated input is below the break-even threshold.  A
    failing estimate (missing statistics, exotic operators) degrades to
    serial rather than guessing.
    """
    workers = int(getattr(options, "parallel_workers", 0) or 0)
    if workers < 2:
        return 0
    try:
        estimate = estimated_input_rows(node, catalog)
    except Exception:
        return 0
    if estimate < parallel_min_rows(options):
        return 0
    return workers
