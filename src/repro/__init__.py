"""repro — unnesting scalar SQL queries in the presence of disjunction.

A from-scratch reproduction of Brantner, May & Moerkotte (ICDE 2007):
a relational query processor whose algebra includes bypass operators,
plus the paper's unnesting equivalences for nested queries whose linking
or correlation predicates occur disjunctively.

Quickstart::

    from repro import Database

    db = Database()
    db.create_table("r", ["A1", "A2", "A3", "A4"], [(1, 1, 0, 2000), ...])
    db.create_table("s", ["B1", "B2", "B3", "B4"], [(9, 1, 0, 0), ...])

    sql = '''SELECT DISTINCT * FROM r
             WHERE A1 = (SELECT COUNT(DISTINCT *) FROM s WHERE A2 = B2)
                OR A4 > 1500'''
    print(db.explain(sql, strategy="unnested"))   # the bypass DAG
    result = db.execute(sql)                       # cost-based strategy
    print(result.pretty())

The layers underneath are importable on their own: ``repro.sql`` (parser,
canonical translation, classification), ``repro.algebra`` (logical
operators incl. σ±/⋈±, aggregates with fI/fO decomposition),
``repro.rewrite`` (Equivalences 1–5), ``repro.optimizer`` (cost model,
join ordering, strategies), ``repro.engine`` (the DAG executor),
``repro.datagen`` (RST & TPC-H-like generators), ``repro.bench`` (the
Figure-7 harness).
"""

from __future__ import annotations

import os as _os
import threading
from typing import Iterable, Sequence

from dataclasses import replace as _dc_replace

from repro.algebra.explain import explain as explain_plan
from repro.engine import EvalOptions
from repro.engine.governor import ResourceLimits
from repro.errors import (
    DurabilityError,
    InjectedFault,
    ReplicationError,
    ReproError,
    ResourceExhausted,
)
from repro.faults import FaultConfig, FaultInjector, injector_from_env
from repro.optimizer import plan_query, execute_sql, PlannedQuery, Strategy
from repro.optimizer.planner import STRATEGIES
from repro.rewrite import UnnestOptions
from repro.service.plancache import CacheInfo, PlanCache
from repro.service.prepared import PreparedStatement
from repro.sql.classify import QueryClass
from repro.storage import Catalog, Column, ColumnType, Schema, Table
from repro.storage.mvcc import SnapshotCatalog, SnapshotHandle, SnapshotManager
from repro.storage.wal import (
    DurabilityConfig,
    DurabilityManager,
    LogRecord,
    WalTail,
    list_snapshots,
    read_wal_tail,
)

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Catalog",
    "CacheInfo",
    "Column",
    "ColumnType",
    "DurabilityConfig",
    "DurabilityError",
    "FaultConfig",
    "FaultInjector",
    "PlanCache",
    "PreparedStatement",
    "ReplicationError",
    "ResourceExhausted",
    "ResourceLimits",
    "Schema",
    "SnapshotCatalog",
    "SnapshotHandle",
    "SnapshotManager",
    "Table",
    "EvalOptions",
    "UnnestOptions",
    "PlannedQuery",
    "Strategy",
    "STRATEGIES",
    "ReproError",
    "__version__",
]

#: Fault-site prefixes that describe the durability path rather than a
#: query plan.  A retryable fault here is a *disk* problem: the
#: self-healing fallback still runs, but the plan-cache entry is not
#: quarantined (the plan did nothing wrong).
DURABILITY_FAULT_PREFIXES = ("storage.wal", "storage.checkpoint")


class Database:
    """A small façade over catalog + planner + engine.

    All strategy names accepted by :meth:`execute` / :meth:`explain`:
    ``auto`` (default, cost-based), ``canonical``, ``unnested``, and the
    commercial-baseline emulations ``s1``, ``s2``, ``s3``.

    Passing ``data_dir`` (or a full :class:`DurabilityConfig`) makes the
    database durable: committed DML and DDL append to a checksummed
    write-ahead log, checkpoints snapshot the whole catalog, and opening
    the same directory again — :meth:`Database.open` — recovers the
    state, discarding any torn trailing log records.  See
    ``docs/durability.md``.
    """

    def __init__(
        self,
        plan_cache_capacity: int = 128,
        data_dir: str | None = None,
        durability: DurabilityConfig | None = None,
    ):
        self.catalog = Catalog()
        # Multi-version concurrency control: every committed mutation
        # appends per-table versions at a fresh commit LSN; read queries
        # pin the current LSN and execute against frozen snapshots, so
        # they never take ``_commit_lock``.  See repro.storage.mvcc and
        # docs/parallel.md.
        self._snapshots = SnapshotManager()
        self._views: dict[str, object] = {}
        self._plan_cache = PlanCache(plan_cache_capacity)
        # View DDL changes what a cached plan means without touching any
        # table version, so the epoch participates in every cache key;
        # bumping it orphans old entries, which then age out of the LRU.
        self._views_epoch = 0
        # Self-healing counters (see execute): how often a retryable
        # runtime failure degraded an execution to the canonical row
        # plan, and what the last degradation looked like.
        self._degradations = 0
        self._fallback_successes = 0
        self._last_degradation: dict | None = None
        # Cumulative access-path counters (see ExecContext.access),
        # surfaced through access_info() and the service /metrics body.
        self._access_totals = {
            "index_scans": 0,
            "index_nl_probes": 0,
            "rows_read": 0,
            "rows_skipped": 0,
            "blocks_skipped": 0,
        }
        # Cumulative shard-parallel counters (see ExecContext.parallel),
        # surfaced through parallel_info() and the service /metrics body.
        self._parallel_totals = {
            "shard_tasks": 0,
            "parallel_filters": 0,
            "parallel_group_bys": 0,
            "parallel_joins": 0,
            "inline_fallbacks": 0,
        }
        # Durability (None = pure in-memory).  The original SQL of each
        # view is kept alongside the parsed form so snapshots can store
        # a replayable definition.
        self._view_sql: dict[str, str] = {}
        # Serializes every mutation's apply+log critical section: the
        # query server admits concurrent execute() calls, and the WAL
        # must record mutations in the order they hit the catalog (and
        # checkpoints must snapshot state consistent with the LSN they
        # claim).  Reentrant: recovery replays records through the same
        # public mutation paths.
        self._commit_lock = threading.RLock()
        # Pins handed out through the public pin_snapshot() facade (the
        # server's sessions, library callers).  close() force-releases
        # whatever is still here: a leaked pin would block version GC
        # forever.  Guarded by its own small lock — pinning must never
        # contend with a writer's commit section.
        self._issued_pins: set[SnapshotHandle] = set()
        self._pins_lock = threading.Lock()
        self._durability: DurabilityManager | None = None
        self._recovery: dict = {}
        self._wal_commit_failures = 0
        self._durability_exemptions = 0
        # Fencing era (replication failover): a monotonic term persisted
        # as an ``era`` WAL control record.  ``_era_lsn`` is the LSN of
        # the record that installed the current era — the first record
        # of the current primary's reign, which is what lets a rejoining
        # node detect a divergent WAL suffix (see docs/replication.md).
        # ``_era_history`` keeps every (era, lsn) reign boundary (one
        # entry per failover) so a node that slept through *several*
        # eras can still locate the first reign record its log missed.
        self._era = 0
        self._era_lsn = 0
        self._era_history: list[tuple[int, int]] = []
        if durability is None and data_dir is not None:
            durability = DurabilityConfig(data_dir=data_dir)
        if durability is not None:
            self._open_durable(durability)

    @classmethod
    def open(
        cls,
        data_dir: str,
        plan_cache_capacity: int = 128,
        durability: DurabilityConfig | None = None,
    ) -> "Database":
        """Open (or create) a durable database rooted at ``data_dir``.

        Recovery runs before the constructor returns: the newest valid
        ``snapshot.<lsn>`` is loaded, the WAL tail is replayed through
        the ordinary execution paths (so index and view epochs advance
        exactly as they did live), and torn trailing records are
        detected by checksum and dropped.
        """
        return cls(plan_cache_capacity, data_dir=data_dir, durability=durability)

    # -- durability ---------------------------------------------------------

    def _open_durable(self, config: DurabilityConfig) -> None:
        import time as _time

        manager = DurabilityManager(config)
        started = _time.perf_counter()
        recovery = manager.start()
        if recovery.snapshot_state is not None:
            self._load_snapshot_state(recovery.snapshot_state)
        for record in recovery.records:
            self._apply_log_record(record)
        # Attach only after replay: the mutation hooks below log iff the
        # manager is attached, so replay never re-logs its own records.
        self._durability = manager
        self._recovery = {
            "seconds": round(_time.perf_counter() - started, 6),
            "snapshot_lsn": recovery.snapshot_lsn,
            "records_replayed": len(recovery.records),
            "torn_bytes_dropped": recovery.torn_bytes_dropped,
            "snapshot_fallback": recovery.snapshot_fallback,
        }

    def _snapshot_state(self) -> dict:
        """The full catalog as a JSON-serializable checkpoint payload."""
        tables = {}
        for name in self.catalog.table_names():
            table = self.catalog.table(name)
            tables[name] = {
                "table_name": table.name or name,
                "columns": [[col.name, col.type.value] for col in table.schema],
                "rows": [list(row) for row in table.rows],
            }
        indexes = [
            {
                "name": info["name"],
                "table": info["table"],
                "column": info["column"],
                "kind": info["kind"],
            }
            for info in self.catalog.index_info()
        ]
        return {
            "tables": tables,
            "views": [[name, sql] for name, sql in self._view_sql.items()],
            "indexes": indexes,
            "era": self._era,
            "era_lsn": self._era_lsn,
            "era_history": [[era, lsn] for era, lsn in self._era_history],
        }

    def _load_snapshot_state(self, state: dict) -> None:
        loaded: dict[str, Table] = {}
        for name, payload in state.get("tables", {}).items():
            schema = Schema(
                [Column(col, ColumnType(kind)) for col, kind in payload["columns"]]
            )
            rows = [tuple(row) for row in payload["rows"]]
            table = Table(schema, rows, name=payload.get("table_name") or name)
            self.catalog.register(table, name)
            loaded[name.lower()] = table
        if loaded:
            # One commit LSN covering the whole checkpoint: the snapshot
            # is a single consistent state, so its version chain entry is
            # a single consistent LSN too.
            self._snapshots.commit(loaded)
        for name, sql in state.get("views", []):
            self.create_view(name, sql)
        for index in state.get("indexes", []):
            self.create_index(
                index["name"], index["table"], index["column"], index["kind"]
            )
        # Old snapshots predate the fencing era and default to era 0.
        self._era = max(self._era, int(state.get("era", 0)))
        self._era_lsn = max(self._era_lsn, int(state.get("era_lsn", 0)))
        for era, lsn in state.get("era_history", []):
            entry = (int(era), int(lsn))
            if entry not in self._era_history:
                self._era_history.append(entry)
        self._era_history.sort()

    def _apply_log_record(self, record: LogRecord) -> None:
        """Redo one WAL record through the ordinary mutation paths."""
        kind, data = record.kind, record.data
        if kind == "dml":
            self.execute(data["sql"])
        elif kind == "create_table":
            schema = Schema(
                [Column(col, ColumnType(t)) for col, t in data["columns"]]
            )
            rows = [tuple(row) for row in data["rows"]]
            table = Table(schema, rows, name=data.get("table_name") or data["name"])
            self.catalog.register(table, data["name"])
            self._snapshots.commit({data["name"].lower(): table})
        elif kind == "drop_table":
            self.drop_table(data["name"])
        elif kind == "create_view":
            self.create_view(data["name"], data["sql"])
        elif kind == "drop_view":
            self.drop_view(data["name"])
        elif kind == "create_index":
            self.create_index(data["name"], data["table"], data["column"], data["kind"])
        elif kind == "drop_index":
            self.drop_index(data["name"])
        elif kind == "era":
            # A fencing-era control record (replication failover).  The
            # era LSN is the record's own: the first LSN of that era's
            # primary reign.  Replay runs before the manager attaches,
            # so this never re-logs.
            self._era = max(self._era, int(data["era"]))
            self._era_lsn = record.lsn
            entry = (int(data["era"]), record.lsn)
            if entry not in self._era_history:
                self._era_history.append(entry)
                self._era_history.sort()
        # Unknown kinds are skipped, not fatal: a newer writer may have
        # logged record types this reader predates.

    def _log_durable(self, kind: str, data: dict, injector=None) -> None:
        """Append one record for a mutation that just committed in memory.

        A fault on the append/fsync path surfaces to the caller (the
        statement is unacknowledged; the WAL rolls its record back) and
        is counted; the in-memory mutation is *not* rolled back — it was
        never acknowledged, and a crash-recovery simply serves the
        pre-statement state.  Every caller holds ``_commit_lock``, which
        also keeps the auto-checkpoint's state capture consistent with
        the LSN it claims to cover.
        """
        manager = self._durability
        if manager is None:
            return
        try:
            manager.log(kind, data, injector=injector)
        except InjectedFault:
            self._wal_commit_failures += 1
            raise
        if manager.checkpoint_due():
            try:
                manager.checkpoint(self._snapshot_state(), injector=injector)
            except (InjectedFault, OSError):
                # The log already holds every committed record, so a
                # failed auto-checkpoint costs compaction, not safety.
                manager.note_checkpoint_failure()

    def checkpoint(self) -> int | None:
        """Snapshot the catalog and truncate the WAL; returns the LSN.

        No-op (returns None) on a pure in-memory database.  Unlike the
        automatic checkpoints, failures here propagate to the caller.
        """
        if self._durability is None:
            return None
        # The commit lock keeps the state capture and the checkpoint LSN
        # consistent: no record can land between the two.
        with self._commit_lock:
            return self._durability.checkpoint(self._snapshot_state())

    def durability_info(self) -> dict:
        """WAL/checkpoint/recovery counters (see docs/durability.md)."""
        if self._durability is None:
            return {"enabled": False}
        info = self._durability.info()
        info["enabled"] = True
        info["recovery"] = dict(self._recovery)
        info["recovery_seconds"] = self._recovery.get("seconds", 0.0)
        info["wal_commit_failures"] = self._wal_commit_failures
        return info

    # -- replication (primary side; see repro.replication) ------------------

    def _require_durability(self) -> DurabilityManager:
        manager = self._durability
        if manager is None:
            raise ReplicationError(
                "replication requires durable storage: open the primary with"
                " a data_dir so there is a WAL to stream"
            )
        return manager

    @property
    def wal_lsn(self) -> int:
        """The durability (WAL) LSN of the newest acknowledged mutation.

        This — not :attr:`commit_lsn`, which counts MVCC versions and
        skips view/index DDL — is the replication causality token: a
        replica's applied LSN is directly comparable to it.  0 on a
        pure in-memory database.
        """
        manager = self._durability
        return 0 if manager is None else manager.last_lsn

    @property
    def era(self) -> int:
        """The fencing era this node believes in (0 = pre-failover)."""
        return self._era

    @property
    def era_lsn(self) -> int:
        """The WAL LSN of the record that installed the current era.

        The first record of the current primary's reign: any node whose
        log already extends to (or past) this LSN while still believing
        an *older* era holds a divergent suffix and must truncate.
        """
        return self._era_lsn

    @property
    def era_history(self) -> tuple[tuple[int, int], ...]:
        """Every (era, era_lsn) reign boundary this node knows of.

        One entry per failover, shipped with the replication stream so a
        follower that slept through several eras can still find the first
        reign record its own log never applied (see docs/replication.md).
        """
        return tuple(self._era_history)

    def pruned_era_history(self) -> tuple[tuple[int, int], ...]:
        """:attr:`era_history` with unreachable reign boundaries pruned
        — what replication responses ship, so a long-lived cluster does
        not grow an unbounded list.

        A boundary is shippable-in-full only while a follower could
        still stream across it.  Streaming always starts at or past the
        WAL's base, and the base never precedes the *oldest retained*
        snapshot: any follower whose log ends before that snapshot's LSN
        gets ``snapshot_required`` and resyncs from scratch, never
        consulting old boundaries at all.  So boundaries at or past the
        oldest retained snapshot are kept verbatim, and everything older
        collapses into one sentinel — the *newest* boundary before the
        snapshot.  The sentinel cannot be dropped: a divergent follower
        whose log reaches past the snapshot LSN while still believing an
        era older than the sentinel's (it slept through that failover,
        then kept applying a deposed primary's suffix) is detected
        exactly by that entry — its LSN is ≤ the follower's log length
        and its era is newer than the follower's belief.
        """
        history = tuple(self._era_history)
        manager = self._durability
        if manager is None or len(history) <= 1:
            return history
        snapshots = list_snapshots(manager.config.data_dir)
        if not snapshots:
            return history
        oldest_retained = snapshots[0][0]
        kept = [entry for entry in history if entry[1] >= oldest_retained]
        pruned = [entry for entry in history if entry[1] < oldest_retained]
        if pruned:
            kept.insert(0, pruned[-1])
        return tuple(kept)

    def bump_era(self, era: int) -> int:
        """Install a newer fencing era, durably (an ``era`` WAL record).

        This is the promotion commit point: the record is the first of
        the new primary's reign, so its LSN becomes :attr:`era_lsn`.
        Eras only move forward; a stale bump is a protocol error.
        """
        with self._commit_lock:
            if era <= self._era:
                raise ReplicationError(
                    f"fencing era must be monotonic: cannot move from"
                    f" {self._era} to {era}"
                )
            self._log_durable("era", {"era": era})
            self._era = era
            self._era_lsn = self.wal_lsn
            self._era_history.append((era, self._era_lsn))
            return self._era

    def replication_snapshot(self) -> dict:
        """A consistent ``{"lsn", "state"}`` bootstrap payload.

        Taken under the commit lock so the state and the LSN it claims
        to cover cannot be split by a concurrent writer — the same
        guarantee a checkpoint gets.  A follower writes this state as
        its own local checkpoint file and recovers from it, which bases
        its local WAL at exactly the primary's LSN (see
        docs/replication.md for why the two logs then stay aligned).
        """
        manager = self._require_durability()
        with self._commit_lock:
            return {"lsn": manager.last_lsn, "state": self._snapshot_state()}

    def replication_wal_tail(
        self,
        from_lsn: int,
        max_records: int = 512,
        max_bytes: int = 1 << 20,
        wait: float = 0.0,
    ) -> WalTail:
        """The raw WAL frames past ``from_lsn`` (catch-up / live tail).

        With ``wait > 0`` this long-polls: it blocks until a record past
        ``from_lsn`` is durable or the wait budget elapses, then answers
        either way.  The frames keep their on-disk CRC framing so the
        follower re-validates every byte (torn frames injected or real
        are detected on the receiving side, exactly like recovery).
        """
        manager = self._require_durability()
        if wait > 0 and manager.last_lsn <= from_lsn:
            manager.wait_for_lsn(from_lsn + 1, wait)
        # Make buffered records (sync="none"/"flush" modes) visible to
        # the file-level reader below.
        manager.flush()
        return read_wal_tail(
            manager.config.data_dir, from_lsn, max_records, max_bytes
        )

    def close(self) -> None:
        """Flush and release the WAL file handle (idempotent).

        Any snapshot pins still outstanding from :meth:`pin_snapshot`
        are force-released first — a leaked pin would keep every table
        version at its LSN alive forever, and after close there is no
        caller left to read them.  Force releases are counted in
        :meth:`mvcc_info` (``pins_force_released``).
        """
        with self._pins_lock:
            leaked = list(self._issued_pins)
            self._issued_pins.clear()
        for handle in leaked:
            self._snapshots.force_unpin(handle)
        if self._durability is not None:
            self._durability.close()

    # -- schema management ---------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[str | Column],
        rows: Iterable[tuple] = (),
    ) -> Table:
        """Create and register a table; returns it for further loading.

        On a durable database the table (schema *and* rows) is logged,
        so tables created before a crash come back on recovery.  Rows
        appended directly to the returned :class:`Table` afterwards
        bypass the log — use ``INSERT`` statements for durable loads, or
        call :meth:`checkpoint` after a bulk load.
        """
        table = Table(Schema(columns), rows, name=name)
        with self._commit_lock:
            self.catalog.register(table)
            self._log_table_registration(table, name)
            self._snapshots.commit({name.lower(): table})
        return table

    def register(self, table: Table, name: str | None = None) -> None:
        """Register an existing :class:`Table` (e.g. from a generator)."""
        with self._commit_lock:
            self.catalog.register(table, name)
            self._log_table_registration(table, name)
            self._snapshots.commit({(name or table.name).lower(): table})

    def _log_table_registration(self, table: Table, name: str | None) -> None:
        if self._durability is None:
            return
        key = (name or table.name).lower()
        self._log_durable(
            "create_table",
            {
                "name": key,
                "table_name": table.name or key,
                "columns": [[col.name, col.type.value] for col in table.schema],
                "rows": [list(row) for row in table.rows],
            },
        )

    def drop_table(self, name: str) -> None:
        """Drop a table (and, implicitly, its indexes)."""
        with self._commit_lock:
            self.catalog.drop(name)
            self._plan_cache.invalidate_table(name)
            self._log_durable("drop_table", {"name": name.lower()})
            self._snapshots.note_drop(name)

    def analyze(self, name: str | None = None) -> None:
        """Refresh optimizer statistics after bulk loads.

        Cached plans depending on the re-analyzed table(s) are evicted so
        the next execution re-costs against the fresh statistics.
        """
        self.catalog.analyze(name)
        if name is None:
            self._plan_cache.clear()
        else:
            self._plan_cache.invalidate_table(name)

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    # -- views ------------------------------------------------------------------

    def create_view(self, name: str, sql: str) -> None:
        """Register a named query; FROM-list references inline it.

        The definition is validated eagerly (parsed and translated once);
        cyclic definitions are rejected at query time.
        """
        from repro.errors import CatalogError
        from repro.sql import parse as parse_sql
        from repro.sql import translate as translate_sql

        key = name.lower()
        with self._commit_lock:
            if key in self.catalog or key in self._views:
                raise CatalogError(f"name {name!r} is already in use")
            statement = parse_sql(sql)
            trial = dict(self._views)
            trial[key] = statement
            translate_sql(statement, self.catalog, trial)  # validate eagerly
            self._views[key] = statement
            self._view_sql[key] = sql
            self._views_epoch += 1
            self._log_durable("create_view", {"name": key, "sql": sql})

    def drop_view(self, name: str) -> None:
        from repro.errors import CatalogError

        key = name.lower()
        with self._commit_lock:
            if key not in self._views:
                raise CatalogError(f"unknown view {name!r}")
            del self._views[key]
            self._view_sql.pop(key, None)
            self._views_epoch += 1
            self._log_durable("drop_view", {"name": key})

    def view_names(self) -> list[str]:
        return sorted(self._views)

    # -- indexes ----------------------------------------------------------------

    def create_index(
        self, name: str, table: str, column: str, kind: str = "hash"
    ) -> None:
        """Create a secondary index (``hash`` or ``sorted``) on a column."""
        with self._commit_lock:
            self.catalog.create_index(name, table, column, kind)
            self._plan_cache.invalidate_table(table)
            self._log_durable(
                "create_index",
                {
                    "name": name.lower(),
                    "table": table.lower(),
                    "column": column,
                    "kind": kind,
                },
            )

    def drop_index(self, name: str) -> None:
        with self._commit_lock:
            index = self.catalog.drop_index(name)
            self._plan_cache.invalidate_table(index.table_name)
            self._log_durable("drop_index", {"name": name.lower()})

    def index_names(self) -> list[str]:
        return self.catalog.index_names()

    def indexes(self) -> list[dict]:
        """Metadata for every registered index (name/table/column/kind/…)."""
        return self.catalog.index_info()

    def _execute_ddl(self, sql: str, params) -> Table:
        """``CREATE INDEX`` / ``DROP INDEX`` through the SQL front end."""
        from repro.errors import ParameterError
        from repro.sql import ast as sql_ast
        from repro.sql.parser import parse_any
        from repro.storage.schema import Schema

        if params is not None:
            raise ParameterError("parameters are not supported in DDL statements")
        statement = parse_any(sql)
        if isinstance(statement, sql_ast.CreateIndexStmt):
            self.create_index(
                statement.name, statement.table, statement.column, statement.method
            )
        elif isinstance(statement, sql_ast.DropIndexStmt):
            self.drop_index(statement.name)
        else:  # pragma: no cover - parser only produces the two DDL forms
            from repro.errors import TranslationError

            raise TranslationError(
                f"unsupported DDL statement: {type(statement).__name__}"
            )
        return Table(Schema(["rows_affected"]), [(0,)])

    # -- querying -----------------------------------------------------------------

    def execute(
        self,
        sql: str,
        strategy: str = "auto",
        options: EvalOptions | None = None,
        unnest_options: UnnestOptions | None = None,
        params=None,
        at_lsn: int | None = None,
    ) -> Table:
        """Run ``sql`` and return the result table.

        DML statements (INSERT/DELETE/UPDATE) are executed too; they
        return a one-row ``rows_affected`` table, as does index DDL
        (``CREATE INDEX name ON table (col) [USING hash|sorted]`` and
        ``DROP INDEX name``).  ``params`` supplies
        values for ``?`` / ``:name`` placeholders in queries (a sequence
        or a mapping respectively); parameterized DML is not supported.

        Execution is *self-healing*: if the chosen plan fails with a
        retryable runtime error (an injected fault, an unexpected engine
        exception) and a structurally simpler alternative exists, the
        plan-cache entry is quarantined and the query re-runs on the
        canonical row-engine plan before any error reaches the caller.
        Deliberate verdicts — budget, cancellation, governor limits —
        are not retried.

        Read queries run under **snapshot isolation**: the current commit
        LSN is pinned before execution and every table scan sees exactly
        the state as of that LSN, concurrent writers notwithstanding —
        readers never take the commit lock.  ``at_lsn`` executes against
        an older pinned LSN instead (the caller must hold a pin from
        :meth:`pin_snapshot`, e.g. a server session); it is ignored for
        DML and DDL, which always act on the live state.
        """
        stripped = sql.lstrip().lower()
        if stripped.startswith(("insert", "delete", "update")):
            if params is not None:
                from repro.errors import ParameterError

                raise ParameterError(
                    "parameters are not supported in DML statements"
                )
            from repro.dml import execute_dml
            from repro.sql.parser import parse_any

            statement = parse_any(sql)
            # No eager plan-cache invalidation here: plans stay *correct*
            # across DML (indexes refresh lazily, batch caches key on the
            # table version); the cache's own drift threshold re-costs
            # plans once the table's cardinality moves far enough.
            with self._commit_lock:
                key = statement.table.lower()
                # Capture the pre-statement state: a reader resolving the
                # newest LSN mid-apply is served this capture instead of
                # the half-mutated live table.
                if key in self.catalog:
                    self._snapshots.begin(key, self.catalog.table(key))
                try:
                    result = execute_dml(statement, self.catalog, self._views)
                    # The statement commits (is acknowledged) only once its
                    # WAL record is synced; durability fault sites arm from
                    # the same options/env plumbing as the engine sites.
                    injector = None
                    if self._durability is not None:
                        injector = self._armed_options(
                            options or EvalOptions()
                        ).faults
                    self._log_durable("dml", {"sql": sql}, injector=injector)
                except BaseException:
                    self._snapshots.abort(key)
                    raise
                # Applied and logged: publish the statement as a new
                # readable version at the next commit LSN.
                self._snapshots.commit({key: self.catalog.table(key)})
            return result.as_table()
        if stripped.startswith(("create", "drop")):
            return self._execute_ddl(sql, params)
        handle = None
        if at_lsn is None:
            handle = self._snapshots.pin()
            lsn = handle.lsn
        else:
            lsn = at_lsn
        read_catalog = SnapshotCatalog(self.catalog, self._snapshots, lsn)
        try:
            if unnest_options is not None:
                return execute_sql(
                    sql, read_catalog, strategy, options, unnest_options,
                    views=self._views, params=params,
                )
            base = self._armed_options(options or EvalOptions())
            engine = "vectorized" if base.vectorized else "row"
            planned = self._cached_plan(sql, strategy, engine=engine)
            try:
                result, ctx = planned.execute(
                    read_catalog, base, with_context=True, params=params
                )
                self._absorb_access(ctx)
                return result
            except ReproError as error:
                if not getattr(error, "retryable", False):
                    raise
                if engine == "row" and planned.chosen_alternative == "canonical":
                    # Nothing simpler to fall back to.
                    raise
                return self._heal_execution(
                    sql, strategy, engine, planned, base, params, error,
                    read_catalog,
                )
        finally:
            if handle is not None:
                self._snapshots.unpin(handle)

    def _heal_execution(
        self,
        sql: str,
        strategy: str,
        engine: str,
        planned: PlannedQuery,
        base: EvalOptions,
        params,
        error: ReproError,
        read_catalog=None,
    ) -> Table:
        """Degrade a failed execution to the canonical row-engine plan.

        The failing key is quarantined so the poisoned plan stops
        serving cache hits; the fallback runs with fault injection
        stripped (the healing path must not be re-injected) and the
        vectorized engine off.  A failure of the fallback itself
        propagates — there is nothing simpler left.

        Faults on the durability path are exempt from quarantine: a
        failed WAL write or checkpoint says nothing about the plan that
        happened to be executing, so poisoning its cache entry would
        only degrade future queries for no correctness gain.
        """
        site = getattr(error, "site", "") or ""
        if site.startswith(DURABILITY_FAULT_PREFIXES):
            self._durability_exemptions += 1
        else:
            self._plan_cache.quarantine(
                sql, strategy, engine=engine, extra_token=self._epoch_token()
            )
        self._degradations += 1
        self._last_degradation = {
            "strategy": planned.strategy.name,
            "alternative": planned.chosen_alternative,
            "engine": engine,
            "error_code": getattr(error, "code", type(error).__name__),
        }
        healed_options = _dc_replace(base, vectorized=False, faults=None)
        fallback = self._cached_plan(sql, "canonical", engine="row")
        result, ctx = fallback.execute(
            read_catalog if read_catalog is not None else self.catalog,
            healed_options,
            with_context=True,
            params=params,
        )
        self._absorb_access(ctx)
        self._fallback_successes += 1
        return result

    @staticmethod
    def _armed_options(base: EvalOptions) -> EvalOptions:
        """Fold ``REPRO_FAULT_*`` / ``REPRO_GOVERNOR_*`` into options.

        Explicit settings always win; the injector is built fresh per
        execution so every query replays the same seeded fault sequence.
        """
        updates = {}
        if base.faults is None:
            injector = injector_from_env()
            if injector is not None:
                updates["faults"] = injector
        if base.resources is None:
            limits = ResourceLimits.from_env()
            if limits is not None:
                updates["resources"] = limits
        if base.parallel_workers == 0:
            env_workers = _os.environ.get("REPRO_PARALLEL_WORKERS", "").strip()
            if env_workers.isdigit() and int(env_workers) >= 2:
                updates["parallel_workers"] = int(env_workers)
        return _dc_replace(base, **updates) if updates else base

    def resilience_info(self) -> dict:
        """Self-healing counters: degradations, fallback successes."""
        return {
            "degradations": self._degradations,
            "fallback_successes": self._fallback_successes,
            "last_degradation": self._last_degradation,
            # Durability-path faults: retried without plan quarantine
            # (a disk fault is not a plan bug), and WAL appends whose
            # statement was applied in memory but never acknowledged.
            "durability_exemptions": self._durability_exemptions,
            "wal_commit_failures": self._wal_commit_failures,
        }

    def _absorb_access(self, ctx) -> None:
        """Fold one execution's access-path counters into the totals."""
        counters = getattr(ctx, "access", None)
        if counters:
            totals = self._access_totals
            for key, value in counters.items():
                totals[key] = totals.get(key, 0) + value
        shard_counters = getattr(ctx, "parallel", None)
        if shard_counters:
            totals = self._parallel_totals
            for key, value in shard_counters.items():
                totals[key] = totals.get(key, 0) + value

    def access_info(self) -> dict:
        """Cumulative access-path counters plus the index inventory."""
        info = dict(self._access_totals)
        info["indexes"] = self.catalog.index_info()
        return info

    def parallel_info(self) -> dict:
        """Shard-parallel counters for this database plus pool state.

        Per-database counters come from absorbed execution contexts;
        the ``pool`` sub-dict reports the process-wide worker pool (see
        :func:`repro.engine.parallel.parallel_totals`).
        """
        info = dict(self._parallel_totals)
        try:
            from repro.engine.parallel import parallel_totals

            info["pool"] = parallel_totals()
        except ImportError:  # numpy missing: the row engine never shards
            info["pool"] = None
        return info

    # -- snapshots (MVCC) ---------------------------------------------------

    @property
    def commit_lsn(self) -> int:
        """The newest committed LSN (what a fresh pin would read)."""
        return self._snapshots.lsn

    def pin_snapshot(self, lsn: int | None = None) -> SnapshotHandle:
        """Pin a commit LSN (default: the newest) for repeatable reads.

        Queries run with ``execute(..., at_lsn=handle.lsn)`` observe the
        database exactly as of that LSN, no matter how many writers
        commit in between.  The pin keeps the reachable versions from
        being garbage-collected; release it with
        :meth:`release_snapshot`.
        """
        handle = self._snapshots.pin(lsn)
        with self._pins_lock:
            self._issued_pins.add(handle)
        return handle

    def release_snapshot(self, handle: SnapshotHandle) -> None:
        """Release a pin taken with :meth:`pin_snapshot` (idempotent)."""
        with self._pins_lock:
            self._issued_pins.discard(handle)
        self._snapshots.unpin(handle)

    def mvcc_info(self) -> dict:
        """Version-chain and pin counters (see docs/parallel.md)."""
        return self._snapshots.info()

    def prepare(self, sql: str, strategy: str = "auto") -> PreparedStatement:
        """Plan a parameterized query once; execute it many times."""
        return PreparedStatement(self, sql, strategy)

    def cache_info(self) -> CacheInfo:
        """Plan-cache counters (hits/misses/invalidations/evictions)."""
        return self._plan_cache.info()

    def _epoch_token(self) -> tuple:
        """Cache-key component covering every DDL kind.

        View DDL and index DDL both change what a cached plan means
        without touching any table version, so both epochs participate
        in the plan-cache key.
        """
        return (self._views_epoch, self.catalog.index_epoch)

    def _cached_plan(
        self, sql: str, strategy: str = "auto", engine: str = "row", statement=None
    ) -> PlannedQuery:
        return self._plan_cache.get_or_plan(
            sql,
            self.catalog,
            strategy,
            engine=engine,
            views=self._views,
            extra_token=self._epoch_token(),
            statement=statement,
        )

    def plan(
        self,
        sql: str,
        strategy: str = "auto",
        unnest_options: UnnestOptions | None = None,
    ) -> PlannedQuery:
        """Plan without executing (repeated benchmark runs reuse this).

        With default ``unnest_options`` the plan comes from (and warms)
        the plan cache; custom options always plan from scratch.
        """
        if unnest_options is not None:
            return plan_query(
                sql, self.catalog, strategy, unnest_options, views=self._views
            )
        return self._cached_plan(sql, strategy)

    def explain(
        self,
        sql: str,
        strategy: str = "auto",
        unnest_options: UnnestOptions | None = None,
    ) -> str:
        """Render the chosen plan as an ASCII DAG."""
        planned = self.plan(sql, strategy, unnest_options)
        header = (
            f"-- strategy: {planned.strategy.name}"
            f" (chose {planned.chosen_alternative},"
            f" est. cost {planned.estimated_cost:.0f})\n"
            f"-- query class: {planned.classification.describe()}\n"
        )
        return header + explain_plan(planned.logical)

    def classify(self, sql: str) -> QueryClass:
        """Kim/Muralikrishna classification of a query."""
        return self.plan(sql, strategy="canonical").classification

    def explain_analyze(
        self,
        sql: str,
        strategy: str = "auto",
        options: EvalOptions | None = None,
        unnest_options: UnnestOptions | None = None,
    ) -> str:
        """Execute and render the physical plan with actual row counts."""
        from dataclasses import replace as dc_replace

        from repro.engine.executor import explain_analyze as run_analyze

        planned = self.plan(sql, strategy, unnest_options)
        base = options or EvalOptions()
        merged = dc_replace(
            base,
            subquery_memo=base.subquery_memo or planned.strategy.subquery_memo,
        )
        header = (
            f"-- strategy: {planned.strategy.name}"
            f" (chose {planned.chosen_alternative})\n"
        )
        report, _ = run_analyze(planned.logical, self.catalog, merged)
        return header + report
