"""repro — unnesting scalar SQL queries in the presence of disjunction.

A from-scratch reproduction of Brantner, May & Moerkotte (ICDE 2007):
a relational query processor whose algebra includes bypass operators,
plus the paper's unnesting equivalences for nested queries whose linking
or correlation predicates occur disjunctively.

Quickstart::

    from repro import Database

    db = Database()
    db.create_table("r", ["A1", "A2", "A3", "A4"], [(1, 1, 0, 2000), ...])
    db.create_table("s", ["B1", "B2", "B3", "B4"], [(9, 1, 0, 0), ...])

    sql = '''SELECT DISTINCT * FROM r
             WHERE A1 = (SELECT COUNT(DISTINCT *) FROM s WHERE A2 = B2)
                OR A4 > 1500'''
    print(db.explain(sql, strategy="unnested"))   # the bypass DAG
    result = db.execute(sql)                       # cost-based strategy
    print(result.pretty())

The layers underneath are importable on their own: ``repro.sql`` (parser,
canonical translation, classification), ``repro.algebra`` (logical
operators incl. σ±/⋈±, aggregates with fI/fO decomposition),
``repro.rewrite`` (Equivalences 1–5), ``repro.optimizer`` (cost model,
join ordering, strategies), ``repro.engine`` (the DAG executor),
``repro.datagen`` (RST & TPC-H-like generators), ``repro.bench`` (the
Figure-7 harness).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from dataclasses import replace as _dc_replace

from repro.algebra.explain import explain as explain_plan
from repro.engine import EvalOptions
from repro.engine.governor import ResourceLimits
from repro.errors import ReproError, ResourceExhausted
from repro.faults import FaultConfig, FaultInjector, injector_from_env
from repro.optimizer import plan_query, execute_sql, PlannedQuery, Strategy
from repro.optimizer.planner import STRATEGIES
from repro.rewrite import UnnestOptions
from repro.service.plancache import CacheInfo, PlanCache
from repro.service.prepared import PreparedStatement
from repro.sql.classify import QueryClass
from repro.storage import Catalog, Column, ColumnType, Schema, Table

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Catalog",
    "CacheInfo",
    "Column",
    "ColumnType",
    "FaultConfig",
    "FaultInjector",
    "PlanCache",
    "PreparedStatement",
    "ResourceExhausted",
    "ResourceLimits",
    "Schema",
    "Table",
    "EvalOptions",
    "UnnestOptions",
    "PlannedQuery",
    "Strategy",
    "STRATEGIES",
    "ReproError",
    "__version__",
]


class Database:
    """A small façade over catalog + planner + engine.

    All strategy names accepted by :meth:`execute` / :meth:`explain`:
    ``auto`` (default, cost-based), ``canonical``, ``unnested``, and the
    commercial-baseline emulations ``s1``, ``s2``, ``s3``.
    """

    def __init__(self, plan_cache_capacity: int = 128):
        self.catalog = Catalog()
        self._views: dict[str, object] = {}
        self._plan_cache = PlanCache(plan_cache_capacity)
        # View DDL changes what a cached plan means without touching any
        # table version, so the epoch participates in every cache key;
        # bumping it orphans old entries, which then age out of the LRU.
        self._views_epoch = 0
        # Self-healing counters (see execute): how often a retryable
        # runtime failure degraded an execution to the canonical row
        # plan, and what the last degradation looked like.
        self._degradations = 0
        self._fallback_successes = 0
        self._last_degradation: dict | None = None
        # Cumulative access-path counters (see ExecContext.access),
        # surfaced through access_info() and the service /metrics body.
        self._access_totals = {
            "index_scans": 0,
            "index_nl_probes": 0,
            "rows_read": 0,
            "rows_skipped": 0,
            "blocks_skipped": 0,
        }

    # -- schema management ---------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[str | Column],
        rows: Iterable[tuple] = (),
    ) -> Table:
        """Create and register a table; returns it for further loading."""
        table = Table(Schema(columns), rows, name=name)
        self.catalog.register(table)
        return table

    def register(self, table: Table, name: str | None = None) -> None:
        """Register an existing :class:`Table` (e.g. from a generator)."""
        self.catalog.register(table, name)

    def analyze(self, name: str | None = None) -> None:
        """Refresh optimizer statistics after bulk loads.

        Cached plans depending on the re-analyzed table(s) are evicted so
        the next execution re-costs against the fresh statistics.
        """
        self.catalog.analyze(name)
        if name is None:
            self._plan_cache.clear()
        else:
            self._plan_cache.invalidate_table(name)

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    # -- views ------------------------------------------------------------------

    def create_view(self, name: str, sql: str) -> None:
        """Register a named query; FROM-list references inline it.

        The definition is validated eagerly (parsed and translated once);
        cyclic definitions are rejected at query time.
        """
        from repro.errors import CatalogError
        from repro.sql import parse as parse_sql
        from repro.sql import translate as translate_sql

        key = name.lower()
        if key in self.catalog or key in self._views:
            raise CatalogError(f"name {name!r} is already in use")
        statement = parse_sql(sql)
        trial = dict(self._views)
        trial[key] = statement
        translate_sql(statement, self.catalog, trial)  # validate eagerly
        self._views[key] = statement
        self._views_epoch += 1

    def drop_view(self, name: str) -> None:
        from repro.errors import CatalogError

        key = name.lower()
        if key not in self._views:
            raise CatalogError(f"unknown view {name!r}")
        del self._views[key]
        self._views_epoch += 1

    def view_names(self) -> list[str]:
        return sorted(self._views)

    # -- indexes ----------------------------------------------------------------

    def create_index(
        self, name: str, table: str, column: str, kind: str = "hash"
    ) -> None:
        """Create a secondary index (``hash`` or ``sorted``) on a column."""
        self.catalog.create_index(name, table, column, kind)
        self._plan_cache.invalidate_table(table)

    def drop_index(self, name: str) -> None:
        index = self.catalog.drop_index(name)
        self._plan_cache.invalidate_table(index.table_name)

    def index_names(self) -> list[str]:
        return self.catalog.index_names()

    def indexes(self) -> list[dict]:
        """Metadata for every registered index (name/table/column/kind/…)."""
        return self.catalog.index_info()

    def _execute_ddl(self, sql: str, params) -> Table:
        """``CREATE INDEX`` / ``DROP INDEX`` through the SQL front end."""
        from repro.errors import ParameterError
        from repro.sql import ast as sql_ast
        from repro.sql.parser import parse_any
        from repro.storage.schema import Schema

        if params is not None:
            raise ParameterError("parameters are not supported in DDL statements")
        statement = parse_any(sql)
        if isinstance(statement, sql_ast.CreateIndexStmt):
            self.create_index(
                statement.name, statement.table, statement.column, statement.method
            )
            table_name = statement.table
        elif isinstance(statement, sql_ast.DropIndexStmt):
            index = self.catalog.drop_index(statement.name)
            table_name = index.table_name
            self._plan_cache.invalidate_table(table_name)
        else:  # pragma: no cover - parser only produces the two DDL forms
            from repro.errors import TranslationError

            raise TranslationError(
                f"unsupported DDL statement: {type(statement).__name__}"
            )
        return Table(Schema(["rows_affected"]), [(0,)])

    # -- querying -----------------------------------------------------------------

    def execute(
        self,
        sql: str,
        strategy: str = "auto",
        options: EvalOptions | None = None,
        unnest_options: UnnestOptions | None = None,
        params=None,
    ) -> Table:
        """Run ``sql`` and return the result table.

        DML statements (INSERT/DELETE/UPDATE) are executed too; they
        return a one-row ``rows_affected`` table, as does index DDL
        (``CREATE INDEX name ON table (col) [USING hash|sorted]`` and
        ``DROP INDEX name``).  ``params`` supplies
        values for ``?`` / ``:name`` placeholders in queries (a sequence
        or a mapping respectively); parameterized DML is not supported.

        Execution is *self-healing*: if the chosen plan fails with a
        retryable runtime error (an injected fault, an unexpected engine
        exception) and a structurally simpler alternative exists, the
        plan-cache entry is quarantined and the query re-runs on the
        canonical row-engine plan before any error reaches the caller.
        Deliberate verdicts — budget, cancellation, governor limits —
        are not retried.
        """
        stripped = sql.lstrip().lower()
        if stripped.startswith(("insert", "delete", "update")):
            if params is not None:
                from repro.errors import ParameterError

                raise ParameterError(
                    "parameters are not supported in DML statements"
                )
            from repro.dml import execute_dml
            from repro.sql.parser import parse_any

            statement = parse_any(sql)
            # No eager plan-cache invalidation here: plans stay *correct*
            # across DML (indexes refresh lazily, batch caches key on the
            # table version); the cache's own drift threshold re-costs
            # plans once the table's cardinality moves far enough.
            return execute_dml(statement, self.catalog, self._views).as_table()
        if stripped.startswith(("create", "drop")):
            return self._execute_ddl(sql, params)
        if unnest_options is not None:
            return execute_sql(
                sql, self.catalog, strategy, options, unnest_options,
                views=self._views, params=params,
            )
        base = self._armed_options(options or EvalOptions())
        engine = "vectorized" if base.vectorized else "row"
        planned = self._cached_plan(sql, strategy, engine=engine)
        try:
            result, ctx = planned.execute(
                self.catalog, base, with_context=True, params=params
            )
            self._absorb_access(ctx)
            return result
        except ReproError as error:
            if not getattr(error, "retryable", False):
                raise
            if engine == "row" and planned.chosen_alternative == "canonical":
                # Nothing simpler to fall back to.
                raise
            return self._heal_execution(
                sql, strategy, engine, planned, base, params, error
            )

    def _heal_execution(
        self,
        sql: str,
        strategy: str,
        engine: str,
        planned: PlannedQuery,
        base: EvalOptions,
        params,
        error: ReproError,
    ) -> Table:
        """Degrade a failed execution to the canonical row-engine plan.

        The failing key is quarantined so the poisoned plan stops
        serving cache hits; the fallback runs with fault injection
        stripped (the healing path must not be re-injected) and the
        vectorized engine off.  A failure of the fallback itself
        propagates — there is nothing simpler left.
        """
        self._plan_cache.quarantine(
            sql, strategy, engine=engine, extra_token=self._epoch_token()
        )
        self._degradations += 1
        self._last_degradation = {
            "strategy": planned.strategy.name,
            "alternative": planned.chosen_alternative,
            "engine": engine,
            "error_code": getattr(error, "code", type(error).__name__),
        }
        healed_options = _dc_replace(base, vectorized=False, faults=None)
        fallback = self._cached_plan(sql, "canonical", engine="row")
        result, ctx = fallback.execute(
            self.catalog, healed_options, with_context=True, params=params
        )
        self._absorb_access(ctx)
        self._fallback_successes += 1
        return result

    @staticmethod
    def _armed_options(base: EvalOptions) -> EvalOptions:
        """Fold ``REPRO_FAULT_*`` / ``REPRO_GOVERNOR_*`` into options.

        Explicit settings always win; the injector is built fresh per
        execution so every query replays the same seeded fault sequence.
        """
        updates = {}
        if base.faults is None:
            injector = injector_from_env()
            if injector is not None:
                updates["faults"] = injector
        if base.resources is None:
            limits = ResourceLimits.from_env()
            if limits is not None:
                updates["resources"] = limits
        return _dc_replace(base, **updates) if updates else base

    def resilience_info(self) -> dict:
        """Self-healing counters: degradations, fallback successes."""
        return {
            "degradations": self._degradations,
            "fallback_successes": self._fallback_successes,
            "last_degradation": self._last_degradation,
        }

    def _absorb_access(self, ctx) -> None:
        """Fold one execution's access-path counters into the totals."""
        counters = getattr(ctx, "access", None)
        if not counters:
            return
        totals = self._access_totals
        for key, value in counters.items():
            totals[key] = totals.get(key, 0) + value

    def access_info(self) -> dict:
        """Cumulative access-path counters plus the index inventory."""
        info = dict(self._access_totals)
        info["indexes"] = self.catalog.index_info()
        return info

    def prepare(self, sql: str, strategy: str = "auto") -> PreparedStatement:
        """Plan a parameterized query once; execute it many times."""
        return PreparedStatement(self, sql, strategy)

    def cache_info(self) -> CacheInfo:
        """Plan-cache counters (hits/misses/invalidations/evictions)."""
        return self._plan_cache.info()

    def _epoch_token(self) -> tuple:
        """Cache-key component covering every DDL kind.

        View DDL and index DDL both change what a cached plan means
        without touching any table version, so both epochs participate
        in the plan-cache key.
        """
        return (self._views_epoch, self.catalog.index_epoch)

    def _cached_plan(
        self, sql: str, strategy: str = "auto", engine: str = "row", statement=None
    ) -> PlannedQuery:
        return self._plan_cache.get_or_plan(
            sql,
            self.catalog,
            strategy,
            engine=engine,
            views=self._views,
            extra_token=self._epoch_token(),
            statement=statement,
        )

    def plan(
        self,
        sql: str,
        strategy: str = "auto",
        unnest_options: UnnestOptions | None = None,
    ) -> PlannedQuery:
        """Plan without executing (repeated benchmark runs reuse this).

        With default ``unnest_options`` the plan comes from (and warms)
        the plan cache; custom options always plan from scratch.
        """
        if unnest_options is not None:
            return plan_query(
                sql, self.catalog, strategy, unnest_options, views=self._views
            )
        return self._cached_plan(sql, strategy)

    def explain(
        self,
        sql: str,
        strategy: str = "auto",
        unnest_options: UnnestOptions | None = None,
    ) -> str:
        """Render the chosen plan as an ASCII DAG."""
        planned = self.plan(sql, strategy, unnest_options)
        header = (
            f"-- strategy: {planned.strategy.name}"
            f" (chose {planned.chosen_alternative},"
            f" est. cost {planned.estimated_cost:.0f})\n"
            f"-- query class: {planned.classification.describe()}\n"
        )
        return header + explain_plan(planned.logical)

    def classify(self, sql: str) -> QueryClass:
        """Kim/Muralikrishna classification of a query."""
        return self.plan(sql, strategy="canonical").classification

    def explain_analyze(
        self,
        sql: str,
        strategy: str = "auto",
        options: EvalOptions | None = None,
        unnest_options: UnnestOptions | None = None,
    ) -> str:
        """Execute and render the physical plan with actual row counts."""
        from dataclasses import replace as dc_replace

        from repro.engine.executor import explain_analyze as run_analyze

        planned = self.plan(sql, strategy, unnest_options)
        base = options or EvalOptions()
        merged = dc_replace(
            base,
            subquery_memo=base.subquery_memo or planned.strategy.subquery_memo,
        )
        header = (
            f"-- strategy: {planned.strategy.name}"
            f" (chose {planned.chosen_alternative})\n"
        )
        report, _ = run_analyze(planned.logical, self.catalog, merged)
        return header + report
