"""Scalar expressions, including nested algebraic expressions.

Expressions appear in operator subscripts (selection and join predicates,
map definitions, aggregate arguments).  Following the paper, subscripts may
contain full algebraic expressions: a :class:`ScalarSubquery` holds the
canonical translation of a nested query block, an :class:`Exists` /
:class:`InSubquery` / :class:`QuantifiedComparison` holds a table
subquery (the technical-report extension).

Expression trees are immutable; structural transformation goes through
:meth:`Expr.replace_children`.  Attribute identity is purely name-based:
the SQL binder guarantees globally unique attribute names via qualifiers,
so ``free_attrs`` / ``rename_attrs`` need no scoping machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.algebra.ops import Operator


COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")

# Mirror image of each comparison operator: ``a op b  ==  b mirror(op) a``.
MIRRORED_OP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}

# Logical negation of each comparison operator (two-valued logic).
NEGATED_OP = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


@dataclass(frozen=True)
class Expr:
    """Base class for scalar expressions."""

    def children(self) -> tuple["Expr", ...]:
        return ()

    def replace_children(self, children: Sequence["Expr"]) -> "Expr":
        if children:
            raise ValueError(f"{type(self).__name__} takes no children")
        return self

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression tree.

        Does *not* descend into subquery plans — those are separate
        algebraic expressions with their own traversals.
        """
        yield self
        for child in self.children():
            yield from child.walk()

    # -- analysis ---------------------------------------------------------

    def free_attrs(self) -> frozenset[str]:
        """All attribute names referenced by this expression.

        For subquery expressions this includes the *free* attributes of the
        nested plan (its correlation attributes) but not attributes the
        plan produces itself.
        """
        names: set[str] = set()
        for node in self.walk():
            if isinstance(node, ColumnRef):
                names.add(node.name)
            elif isinstance(node, SubqueryExpr):
                names.update(node.plan_free_attrs())
        return frozenset(names)

    def contains_subquery(self) -> bool:
        return any(isinstance(node, SubqueryExpr) for node in self.walk())

    def is_comparison(self) -> bool:
        return isinstance(self, Comparison)

    # -- transformation ----------------------------------------------------

    def rename_attrs(self, mapping: dict[str, str]) -> "Expr":
        """Return a copy with every :class:`ColumnRef` renamed via ``mapping``.

        Names absent from ``mapping`` are left untouched.  Subquery plans
        are *not* rewritten (binder-issued names never collide across
        blocks, so renaming outer attributes cannot capture inner ones);
        free attributes inside subquery plans are renamed through the
        plan's own rename hook.
        """
        if isinstance(self, ColumnRef):
            return ColumnRef(mapping.get(self.name, self.name))
        if isinstance(self, SubqueryExpr):
            return self.rename_free_attrs(mapping)
        kids = self.children()
        if not kids:
            return self
        return self.replace_children([kid.rename_attrs(mapping) for kid in kids])

    # -- misc ----------------------------------------------------------------

    def sql(self) -> str:
        """Best-effort SQL-ish rendering (used by explain output)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expr):
    """A constant value (``None`` is the SQL NULL)."""

    value: object

    def sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A reference to an attribute by (globally unique) name."""

    name: str

    def sql(self) -> str:
        return self.name


@dataclass(frozen=True)
class Parameter(Expr):
    """A prepared-statement placeholder bound at execution time.

    ``key`` is the positional index (int) or name (str) assigned by the
    SQL front-end.  A parameter is a *runtime constant*: it has no free
    attributes (so correlation analysis and the unnesting equivalences
    treat it like a literal) but an unknown value, so constant folding
    leaves it alone and selectivity estimation falls back to defaults.
    One optimized plan therefore serves every binding of the template.
    """

    key: object  # int | str

    def sql(self) -> str:
        if isinstance(self.key, int):
            return f"?{self.key + 1}"
        return f":{self.key}"


@dataclass(frozen=True)
class Comparison(Expr):
    """``left op right`` with op ∈ {=, <>, <, <=, >, >=} (3-valued)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def children(self):
        return (self.left, self.right)

    def replace_children(self, children):
        left, right = children
        return Comparison(self.op, left, right)

    def mirrored(self) -> "Comparison":
        """``b mirror(op) a`` — used to normalise subqueries to the right."""
        return Comparison(MIRRORED_OP[self.op], self.right, self.left)

    def sql(self) -> str:
        return f"{self.left.sql()} {self.op} {self.right.sql()}"


@dataclass(frozen=True)
class And(Expr):
    """N-ary conjunction (3-valued)."""

    items: tuple[Expr, ...]

    def children(self):
        return self.items

    def replace_children(self, children):
        return And(tuple(children))

    def sql(self) -> str:
        return "(" + " AND ".join(item.sql() for item in self.items) + ")"


@dataclass(frozen=True)
class Or(Expr):
    """N-ary disjunction (3-valued)."""

    items: tuple[Expr, ...]

    def children(self):
        return self.items

    def replace_children(self, children):
        return Or(tuple(children))

    def sql(self) -> str:
        return "(" + " OR ".join(item.sql() for item in self.items) + ")"


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation (3-valued: NOT UNKNOWN = UNKNOWN)."""

    operand: Expr

    def children(self):
        return (self.operand,)

    def replace_children(self, children):
        (operand,) = children
        return Not(operand)

    def sql(self) -> str:
        return f"NOT ({self.operand.sql()})"


@dataclass(frozen=True)
class Arithmetic(Expr):
    """``left op right`` with op ∈ {+, -, *, /}; NULL-propagating."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in ("+", "-", "*", "/"):
            raise ValueError(f"unknown arithmetic operator {self.op!r}")

    def children(self):
        return (self.left, self.right)

    def replace_children(self, children):
        left, right = children
        return Arithmetic(self.op, left, right)

    def sql(self) -> str:
        return f"({self.left.sql()} {self.op} {self.right.sql()})"


@dataclass(frozen=True)
class Negate(Expr):
    """Unary minus; NULL-propagating."""

    operand: Expr

    def children(self):
        return (self.operand,)

    def replace_children(self, children):
        (operand,) = children
        return Negate(operand)

    def sql(self) -> str:
        return f"-({self.operand.sql()})"


@dataclass(frozen=True)
class Like(Expr):
    """SQL ``LIKE`` with ``%``/``_`` wildcards."""

    operand: Expr
    pattern: str
    negated: bool = False

    def children(self):
        return (self.operand,)

    def replace_children(self, children):
        (operand,) = children
        return Like(operand, self.pattern, self.negated)

    def sql(self) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        return f"{self.operand.sql()} {keyword} '{self.pattern}'"


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL`` — always two-valued."""

    operand: Expr
    negated: bool = False

    def children(self):
        return (self.operand,)

    def replace_children(self, children):
        (operand,) = children
        return IsNull(operand, self.negated)

    def sql(self) -> str:
        keyword = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.operand.sql()} {keyword}"


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (v1, v2, …)`` over literal values."""

    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def children(self):
        return (self.operand,) + self.items

    def replace_children(self, children):
        operand, *items = children
        return InList(operand, tuple(items), self.negated)

    def sql(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        inner = ", ".join(item.sql() for item in self.items)
        return f"{self.operand.sql()} {keyword} ({inner})"


@dataclass(frozen=True)
class Case(Expr):
    """Searched ``CASE WHEN c THEN v … [ELSE d] END``."""

    branches: tuple[tuple[Expr, Expr], ...]
    default: Expr = field(default_factory=lambda: Literal(None))

    def children(self):
        flat: list[Expr] = []
        for cond, value in self.branches:
            flat.extend((cond, value))
        flat.append(self.default)
        return tuple(flat)

    def replace_children(self, children):
        *pairs, default = children
        branches = tuple(
            (pairs[i], pairs[i + 1]) for i in range(0, len(pairs), 2)
        )
        return Case(branches, default)

    def sql(self) -> str:
        parts = [f"WHEN {c.sql()} THEN {v.sql()}" for c, v in self.branches]
        return "CASE " + " ".join(parts) + f" ELSE {self.default.sql()} END"


#: Registry of scalar functions available to queries and map operators.
SCALAR_FUNCTIONS: dict[str, Callable] = {
    "abs": lambda v: None if v is None else abs(v),
    "lower": lambda v: None if v is None else v.lower(),
    "upper": lambda v: None if v is None else v.upper(),
    "length": lambda v: None if v is None else len(v),
    "coalesce": lambda *vs: next((v for v in vs if v is not None), None),
    "mod": lambda a, b: None if a is None or b is None else a % b,
}


@dataclass(frozen=True)
class FunctionCall(Expr):
    """A call to a registered scalar function."""

    name: str
    args: tuple[Expr, ...]

    def __post_init__(self):
        if self.name not in SCALAR_FUNCTIONS:
            raise ValueError(f"unknown scalar function {self.name!r}")

    def children(self):
        return self.args

    def replace_children(self, children):
        return FunctionCall(self.name, tuple(children))

    def sql(self) -> str:
        return f"{self.name}(" + ", ".join(a.sql() for a in self.args) + ")"


# ---------------------------------------------------------------------------
# Subquery expressions — nested algebraic expressions in subscripts
# ---------------------------------------------------------------------------


class SubqueryExpr(Expr):
    """Common base for expressions that embed an algebraic plan."""

    plan: "Operator"

    def plan_free_attrs(self) -> frozenset[str]:
        """Free (correlation) attributes of the embedded plan."""
        return self.plan.free_attrs()

    def rename_free_attrs(self, mapping: dict[str, str]) -> "SubqueryExpr":
        """Rename the plan's free attributes (outer-side renaming)."""
        new_plan = self.plan.rename_free_attrs(mapping)
        return replace(self, plan=new_plan)


@dataclass(frozen=True)
class ScalarSubquery(SubqueryExpr):
    """A nested query block producing a single scalar value.

    The canonical translation of a type A/JA block: the embedded plan ends
    in a :class:`~repro.algebra.ops.ScalarAggregate` (single row, single
    column).  An empty result evaluates to NULL.
    """

    plan: "Operator"

    def children(self):
        return ()

    def sql(self) -> str:
        return "(<scalar subquery>)"


@dataclass(frozen=True)
class Exists(SubqueryExpr):
    """``[NOT] EXISTS (subquery)`` — a type N/J table subquery."""

    plan: "Operator"
    negated: bool = False

    def children(self):
        return ()

    def sql(self) -> str:
        keyword = "NOT EXISTS" if self.negated else "EXISTS"
        return f"{keyword} (<subquery>)"


@dataclass(frozen=True)
class InSubquery(SubqueryExpr):
    """``operand [NOT] IN (subquery)`` with SQL 3-valued NULL semantics."""

    operand: Expr
    plan: "Operator"
    negated: bool = False

    def children(self):
        return (self.operand,)

    def replace_children(self, children):
        (operand,) = children
        return InSubquery(operand, self.plan, self.negated)

    def sql(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        return f"{self.operand.sql()} {keyword} (<subquery>)"


@dataclass(frozen=True)
class QuantifiedComparison(SubqueryExpr):
    """``operand op ANY|ALL (subquery)`` (technical-report extension)."""

    operand: Expr
    op: str
    quantifier: str  # "any" | "all"
    plan: "Operator"

    def __post_init__(self):
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")
        if self.quantifier not in ("any", "all"):
            raise ValueError(f"quantifier must be any/all, got {self.quantifier!r}")

    def children(self):
        return (self.operand,)

    def replace_children(self, children):
        (operand,) = children
        return QuantifiedComparison(operand, self.op, self.quantifier, self.plan)

    def sql(self) -> str:
        return f"{self.operand.sql()} {self.op} {self.quantifier.upper()} (<subquery>)"


@dataclass(frozen=True)
class AggCombine(Expr):
    """Combine decomposed aggregate partials: ``fO(item1, item2, …)``.

    Introduced by Equivalence 4's map operator ``χ g:fO(g1, g2)``.  Each
    item evaluates to an *inner partial* (the result of ``fI``); the node
    merges them and finalises to the aggregate's output value.
    """

    agg_name: str
    items: tuple[Expr, ...]

    def children(self):
        return self.items

    def replace_children(self, children):
        return AggCombine(self.agg_name, tuple(children))

    def sql(self) -> str:
        inner = ", ".join(item.sql() for item in self.items)
        return f"{self.agg_name}O({inner})"


# ---------------------------------------------------------------------------
# Construction and normalisation helpers
# ---------------------------------------------------------------------------


TRUE = Literal(True)
FALSE = Literal(False)
NULL = Literal(None)


def conjunction(items: Sequence[Expr]) -> Expr:
    """Build a flattened conjunction; empty input yields TRUE."""
    flat: list[Expr] = []
    for item in items:
        if isinstance(item, And):
            flat.extend(item.items)
        elif item == TRUE:
            continue
        else:
            flat.append(item)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disjunction(items: Sequence[Expr]) -> Expr:
    """Build a flattened disjunction; empty input yields FALSE."""
    flat: list[Expr] = []
    for item in items:
        if isinstance(item, Or):
            flat.extend(item.items)
        elif item == FALSE:
            continue
        else:
            flat.append(item)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def conjuncts(expr: Expr) -> list[Expr]:
    """Top-level conjuncts of ``expr`` (flattening nested ANDs)."""
    if isinstance(expr, And):
        out: list[Expr] = []
        for item in expr.items:
            out.extend(conjuncts(item))
        return out
    return [expr]


def disjuncts(expr: Expr) -> list[Expr]:
    """Top-level disjuncts of ``expr`` (flattening nested ORs)."""
    if isinstance(expr, Or):
        out: list[Expr] = []
        for item in expr.items:
            out.extend(disjuncts(item))
        return out
    return [expr]


def eq(left: Expr | str, right: Expr | str) -> Comparison:
    """Shorthand: equality between columns (strings) or expressions."""
    if isinstance(left, str):
        left = ColumnRef(left)
    if isinstance(right, str):
        right = ColumnRef(right)
    return Comparison("=", left, right)


def col(name: str) -> ColumnRef:
    return ColumnRef(name)


def lit(value: object) -> Literal:
    return Literal(value)
