"""The relational algebra extended with bypass operators.

This package defines the *logical* algebra of the paper (§2.3):

* scalar expressions (:mod:`repro.algebra.expr`) — including nested
  algebraic expressions in selection subscripts, the distinguishing
  feature of the canonical translation of nested SQL;
* aggregate functions and their decomposition (:mod:`repro.algebra.aggregates`)
  — ``f = fO ∘ (fI, fI)`` per §3.3;
* logical operators (:mod:`repro.algebra.ops`) — the core algebra plus the
  five extended operators (Γ unary/binary, leftouterjoin with defaults,
  ν numbering, χ map) and the two bypass operators (σ±, ⋈±) whose
  positive/negative streams turn plans into DAGs;
* plan rendering (:mod:`repro.algebra.explain`).
"""

from repro.algebra import expr
from repro.algebra import ops
from repro.algebra.aggregates import AggSpec, get_aggregate
from repro.algebra.explain import explain

__all__ = ["expr", "ops", "AggSpec", "get_aggregate", "explain"]
