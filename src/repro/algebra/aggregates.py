"""Aggregate functions and their decomposition (paper §3.3).

A *decomposable* aggregate ``f`` over ``X = Y ⊎ Z`` satisfies
``f(X) = fO(fI(Y), fI(Z))``.  Equivalence 4 exploits this to split the
inner relation with a bypass selection, pre-aggregate each partition, and
recombine partial results with a map operator.

Each :class:`Aggregate` therefore exposes two evaluation styles:

* a streaming accumulator (``init_state`` / ``step`` / ``finalize``) used
  by the grouping and scalar-aggregation runtime operators;
* the decomposition interface (``partial_empty`` / ``partial_step`` /
  ``combine`` / ``finalize_partial``) implementing ``fI`` and ``fO``.

NULL handling follows SQL: every aggregate except ``COUNT(*)`` ignores
NULL inputs, and every aggregate except ``COUNT`` evaluates to NULL on an
empty (or all-NULL) input.  ``f(∅)`` — the leftouterjoin default that
fixes the *count bug* — is ``finalize_partial(partial_empty())``.

``DISTINCT`` variants of COUNT/SUM/AVG are *not* decomposable (footnote 1
of the paper: Eqv. 5 must be used); MIN/MAX are insensitive to duplicates,
so their DISTINCT variants remain decomposable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.algebra.expr import Expr


class Aggregate:
    """Base class for aggregate function implementations.

    Subclasses define the streaming interface over *non-distinct* inputs;
    DISTINCT handling (deduplicating the input bag first) is layered on
    top by the runtime, because it is orthogonal to every function here.
    """

    name: str = ""
    decomposable: bool = True
    #: Whether the DISTINCT variant is still decomposable (MIN/MAX only).
    distinct_decomposable: bool = False
    #: Whether NULL inputs participate (COUNT(*) only).
    counts_nulls: bool = False

    # -- streaming accumulator ---------------------------------------------

    def init_state(self):
        raise NotImplementedError

    def step(self, state, value):
        raise NotImplementedError

    def finalize(self, state):
        raise NotImplementedError

    # -- decomposition: fI / fO ----------------------------------------------

    def partial_empty(self):
        """``fI(∅)`` — the identity element of :meth:`combine`."""
        return self.init_state()

    def partial_step(self, partial, value):
        """Fold one value into a partial (``fI`` over a stream)."""
        return self.step(partial, value)

    def combine(self, left, right):
        """Merge two partials (the heart of ``fO``)."""
        raise NotImplementedError

    def finalize_partial(self, partial):
        """Turn a partial into the aggregate's output value."""
        return self.finalize(partial)

    # -- convenience ------------------------------------------------------

    def empty_value(self):
        """``f(∅)`` — the value of the aggregate over an empty input."""
        return self.finalize(self.init_state())

    def over(self, values) -> object:
        """Evaluate the aggregate over an iterable of values (tests)."""
        state = self.init_state()
        for value in values:
            if value is None and not self.counts_nulls:
                continue
            state = self.step(state, value)
        return self.finalize(state)


class CountStar(Aggregate):
    """``COUNT(*)`` — counts rows, including NULLs."""

    name = "count"
    counts_nulls = True

    def init_state(self):
        return 0

    def step(self, state, value):
        return state + 1

    def finalize(self, state):
        return state

    def combine(self, left, right):
        return left + right


class Count(CountStar):
    """``COUNT(expr)`` — counts non-NULL values.

    The runtime filters NULLs before :meth:`step` (``counts_nulls`` is
    False), so the accumulator is identical to ``COUNT(*)``.
    """

    counts_nulls = False
    distinct_decomposable = False


class Sum(Aggregate):
    """``SUM(expr)`` — NULL over empty input."""

    name = "sum"

    def init_state(self):
        return None

    def step(self, state, value):
        return value if state is None else state + value

    def finalize(self, state):
        return state

    def combine(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return left + right


class Avg(Aggregate):
    """``AVG(expr)`` — partial is a ``(sum, count)`` pair (paper §3.3)."""

    name = "avg"

    def init_state(self):
        return (0, 0)

    def step(self, state, value):
        total, count = state
        return (total + value, count + 1)

    def finalize(self, state):
        total, count = state
        if count == 0:
            return None
        return total / count

    def combine(self, left, right):
        return (left[0] + right[0], left[1] + right[1])


class Min(Aggregate):
    """``MIN(expr)`` — duplicate-insensitive, hence DISTINCT-decomposable."""

    name = "min"
    distinct_decomposable = True

    def init_state(self):
        return None

    def step(self, state, value):
        if state is None or value < state:
            return value
        return state

    def finalize(self, state):
        return state

    def combine(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return left if left < right else right


class Max(Aggregate):
    """``MAX(expr)`` — duplicate-insensitive, hence DISTINCT-decomposable."""

    name = "max"
    distinct_decomposable = True

    def init_state(self):
        return None

    def step(self, state, value):
        if state is None or value > state:
            return value
        return state

    def finalize(self, state):
        return state

    def combine(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return left if left > right else right


_AGGREGATES: dict[str, Aggregate] = {
    "count": Count(),
    "count_star": CountStar(),
    "sum": Sum(),
    "avg": Avg(),
    "min": Min(),
    "max": Max(),
}


def get_aggregate(name: str) -> Aggregate:
    """Look up an aggregate implementation by (lower-case) name."""
    try:
        return _AGGREGATES[name.lower()]
    except KeyError:
        raise ValueError(f"unknown aggregate function {name!r}") from None


#: Sentinel used as the argument of ``COUNT(*)`` / ``COUNT(DISTINCT *)``:
#: the aggregate consumes the whole input row.
STAR = "*"


@dataclass(frozen=True)
class AggSpec:
    """One aggregate call: function, argument, DISTINCT flag, partial mode.

    ``arg`` is either a scalar :class:`~repro.algebra.expr.Expr` or the
    :data:`STAR` sentinel.  When ``as_partial`` is set, grouping and
    scalar-aggregation operators emit the *inner partial* ``fI(...)``
    instead of the final value — this is how Equivalence 4 materialises
    ``g1`` and ``g2`` before the recombining map.
    """

    func: str
    arg: object = STAR  # Expr | STAR
    distinct: bool = False
    as_partial: bool = False

    def __post_init__(self):
        get_aggregate(self.resolved_name())  # validate eagerly

    def resolved_name(self) -> str:
        """Implementation name: ``COUNT(*)`` maps to ``count_star``."""
        if self.func.lower() == "count" and self.arg is STAR and not self.distinct:
            return "count_star"
        return self.func.lower()

    @property
    def aggregate(self) -> Aggregate:
        return get_aggregate(self.resolved_name())

    @property
    def is_decomposable(self) -> bool:
        """Can Equivalence 4 split this aggregate (paper footnote 1)?"""
        agg = self.aggregate
        if self.distinct:
            return agg.distinct_decomposable
        return agg.decomposable

    def free_attrs(self) -> frozenset[str]:
        if self.arg is STAR:
            return frozenset()
        return self.arg.free_attrs()

    def rename_attrs(self, mapping: dict[str, str]) -> "AggSpec":
        if self.arg is STAR:
            return self
        return AggSpec(self.func, self.arg.rename_attrs(mapping), self.distinct, self.as_partial)

    def with_partial(self, as_partial: bool = True) -> "AggSpec":
        return AggSpec(self.func, self.arg, self.distinct, as_partial)

    def empty_result(self):
        """The value this spec produces over an empty input.

        Respects ``as_partial``: in partial mode the empty *partial*
        (``fI(∅)``) is produced, otherwise ``f(∅)``.
        """
        agg = self.aggregate
        if self.as_partial:
            return agg.partial_empty()
        return agg.empty_value()

    def sql(self) -> str:
        arg_sql = "*" if self.arg is STAR else self.arg.sql()
        distinct = "DISTINCT " if self.distinct else ""
        suffix = "ᴵ" if self.as_partial else ""
        return f"{self.func.lower()}{suffix}({distinct}{arg_sql})"


def evaluate_spec(spec: AggSpec, values) -> object:
    """Evaluate ``spec`` over an iterable of already-extracted arg values.

    Used by runtime operators after they have projected the aggregate's
    argument per input row (for STAR, the whole row tuple).  Handles
    DISTINCT, NULL filtering, and partial mode.
    """
    agg = spec.aggregate
    if spec.distinct:
        seen = set()
        deduped = []
        for value in values:
            if value not in seen:
                seen.add(value)
                deduped.append(value)
        values = deduped
    state = agg.init_state()
    for value in values:
        if value is None and not agg.counts_nulls:
            continue
        state = agg.step(state, value)
    if spec.as_partial:
        return state
    return agg.finalize(state)
