"""Plan rendering: ASCII trees for DAG-structured bypass plans.

The renderer mirrors the paper's figures: bypass streams are annotated
``(+)`` / ``(−)``, shared bypass operators are printed once and referenced
afterwards, and nested algebraic expressions inside selection subscripts
are rendered as indented sub-plans — making the canonical plans of
Figures 2(a), 3(a), 5(a), 6(a) and the unnested DAGs of 2(c), 3(b), 5(b),
6(c) directly comparable to the paper.
"""

from __future__ import annotations

import io

from repro.algebra.ops import BypassJoin, BypassSelect, Operator, StreamTap


def explain(plan: Operator, show_schema: bool = False) -> str:
    """Render ``plan`` as an indented ASCII tree.

    Shared nodes (bypass operators consumed by two taps, or any other DAG
    sharing) are expanded on first encounter and referenced as
    ``[shared #n]`` afterwards.
    """
    renderer = _Renderer(show_schema)
    renderer.render(plan, prefix="", is_last=True, connector="")
    return renderer.output.getvalue()


class _Renderer:
    def __init__(self, show_schema: bool):
        self.output = io.StringIO()
        self.show_schema = show_schema
        self.shared_ids: dict[int, int] = {}
        self.next_shared = 1

    def render(self, node: Operator, prefix: str, is_last: bool, connector: str) -> None:
        line = prefix + connector + self._label(node)
        if id(node) in self.shared_ids:
            self.output.write(f"{line} [shared #{self.shared_ids[id(node)]}]\n")
            return
        if self._is_shared(node):
            self.shared_ids[id(node)] = self.next_shared
            line += f" [#{self.next_shared}]"
            self.next_shared += 1
        if self.show_schema:
            line += f"  :: ({', '.join(node.schema.names)})"
        self.output.write(line + "\n")

        child_prefix = prefix + ("" if connector == "" else ("   " if is_last else "|  "))
        children = node.children()
        subplans = list(node.subquery_plans())

        for index, subplan in enumerate(subplans):
            last = not children and index == len(subplans) - 1
            self.output.write(child_prefix + ("`~ " if last else "|~ ") + "<nested plan>\n")
            nested_prefix = child_prefix + ("   " if last else "|  ")
            self.render(subplan, nested_prefix, is_last=True, connector="`- ")

        for index, child in enumerate(children):
            last = index == len(children) - 1
            self.render(child, child_prefix, last, "`- " if last else "|- ")

    def _label(self, node: Operator) -> str:
        if isinstance(node, StreamTap):
            sign = "(+)" if node.positive_stream else "(−)"
            return f"{sign} of"
        return node.label()

    def _is_shared(self, node: Operator) -> bool:
        return isinstance(node, (BypassSelect, BypassJoin))


def plan_signature(plan: Operator) -> list[str]:
    """A flat, order-deterministic list of operator labels (tests).

    Each entry is ``depth*'.' + label``; shared nodes appear once.  This is
    what the figure golden tests compare — robust to cosmetic renderer
    changes while still pinning the plan shape.
    """
    lines: list[str] = []
    seen: set[int] = set()

    def visit(node: Operator, depth: int) -> None:
        if id(node) in seen:
            lines.append("." * depth + "@" + _short_label(node))
            return
        seen.add(id(node))
        lines.append("." * depth + _short_label(node))
        for subplan in node.subquery_plans():
            visit(subplan, depth + 2)
        for child in node.children():
            visit(child, depth + 1)

    visit(plan, 0)
    return lines


def _short_label(node: Operator) -> str:
    if isinstance(node, StreamTap):
        return "+" if node.positive_stream else "-"
    return type(node).__name__


def count_operators(plan: Operator) -> dict[str, int]:
    """Histogram of operator class names over the DAG (each node once).

    Includes operators inside nested subquery plans.
    """
    counts: dict[str, int] = {}
    seen: set[int] = set()

    def visit(node: Operator) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        name = type(node).__name__
        counts[name] = counts.get(name, 0) + 1
        for subplan in node.subquery_plans():
            visit(subplan)
        for child in node.children():
            visit(child)

    visit(plan)
    return counts
