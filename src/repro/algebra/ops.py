"""Logical operators: the core algebra plus the paper's extensions.

Core operators (§2.3): selection, projection, renaming, cross product /
join, union / intersection / difference, disjoint union.

Extended operators (Fig. 1): unary grouping ``Γ``, binary grouping ``Γ``
(two inputs), leftouterjoin with a default function ``g:f(∅)`` (fixing
the *count bug*), numbering ``ν``, and map ``χ``.

Bypass operators (Kemper et al. [17]): :class:`BypassSelect` and
:class:`BypassJoin` split their input into a *positive* and a *negative*
stream.  Streams are consumed through :class:`StreamTap` nodes, so plans
containing bypass operators are DAGs — both taps share the single bypass
node, which the executor evaluates exactly once.

Operators are immutable after construction and compare by identity (DAG
sharing is significant).  Attribute identity is name-based; the SQL binder
guarantees global uniqueness of names, which is what lets ``free_attrs``
— the correlation attributes of a nested plan — be a simple set
difference.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.algebra.aggregates import AggSpec
from repro.algebra.expr import Expr, SubqueryExpr
from repro.errors import SchemaError
from repro.storage.schema import Column, Schema


class Operator:
    """Base class for logical operators."""

    __slots__ = ("schema", "_free_cache")

    schema: Schema

    def __init__(self, schema: Schema):
        self.schema = schema
        self._free_cache: frozenset[str] | None = None

    # -- tree structure ------------------------------------------------------

    def children(self) -> tuple["Operator", ...]:
        return ()

    def replace_children(self, children: Sequence["Operator"]) -> "Operator":
        if children:
            raise ValueError(f"{type(self).__name__} takes no children")
        return self

    def exprs(self) -> tuple[Expr, ...]:
        """Scalar expressions in this operator's subscript."""
        return ()

    def agg_specs(self) -> tuple[AggSpec, ...]:
        """Aggregate specifications in this operator's subscript."""
        return ()

    def iter_dag(self) -> Iterator["Operator"]:
        """All nodes of the plan DAG, each visited once (pre-order)."""
        seen: set[int] = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            yield node
            stack.extend(reversed(node.children()))

    def subquery_plans(self) -> Iterator["Operator"]:
        """Plans embedded in subquery expressions of this node's subscript."""
        for expression in self.exprs():
            for node in expression.walk():
                if isinstance(node, SubqueryExpr):
                    yield node.plan

    # -- free attributes -----------------------------------------------------

    def _input_names(self) -> frozenset[str]:
        names: set[str] = set()
        for child in self.children():
            names.update(child.schema.names)
        return frozenset(names)

    def free_attrs(self) -> frozenset[str]:
        """Attributes referenced but not produced below — correlation.

        A plan with an empty ``free_attrs`` set is self-contained; a
        nested plan embedded in a :class:`~repro.algebra.expr.ScalarSubquery`
        with non-empty free attributes is *correlated* on those names.
        """
        if self._free_cache is not None:
            return self._free_cache
        referenced: set[str] = set()
        for expression in self.exprs():
            referenced.update(expression.free_attrs())
        for spec in self.agg_specs():
            referenced.update(spec.free_attrs())
        free = referenced - self._input_names()
        for child in self.children():
            free |= child.free_attrs()
        result = frozenset(free)
        self._free_cache = result
        return result

    # -- transformation -------------------------------------------------------

    def rename_free_attrs(self, mapping: dict[str, str]) -> "Operator":
        """Rewrite free attribute references according to ``mapping``.

        Binder-issued qualifiers make attribute names globally unique, so
        the mapping can be applied to subscripts without capture checks.
        Nodes that reference none of the mapped names are shared, not
        copied, and DAG sharing (bypass streams) is preserved via a memo.
        """
        return self._rename_free_attrs(mapping, {})

    def _rename_free_attrs(self, mapping: dict[str, str], memo: dict[int, "Operator"]) -> "Operator":
        cached = memo.get(id(self))
        if cached is not None:
            return cached
        relevant = self.free_attrs() & set(mapping)
        if not relevant:
            memo[id(self)] = self
            return self
        new_children = [
            child._rename_free_attrs(mapping, memo) for child in self.children()
        ]
        clone = self.replace_children(new_children)
        clone = clone._rename_subscripts(mapping)
        memo[id(self)] = clone
        return clone

    def _rename_subscripts(self, mapping: dict[str, str]) -> "Operator":
        """Hook for nodes with expressions in their subscript."""
        return self

    # -- misc -------------------------------------------------------------------

    def label(self) -> str:
        """Short human-readable label used by the explain renderer."""
        return type(self).__name__

    def __repr__(self) -> str:
        return f"<{self.label()} schema={list(self.schema.names)}>"


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


class Scan(Operator):
    """A base-table scan.

    ``table_name`` names a catalog table; ``schema`` carries the (usually
    qualifier-prefixed) output attribute names in catalog column order.
    """

    __slots__ = ("table_name", "qualifier")

    def __init__(self, table_name: str, schema: Schema, qualifier: str = ""):
        super().__init__(schema)
        self.table_name = table_name
        self.qualifier = qualifier

    def label(self) -> str:
        if self.qualifier:
            return f"Scan({self.table_name} as {self.qualifier})"
        return f"Scan({self.table_name})"


class IndexScan(Scan):
    """An index-backed scan with pushed-down key predicate and projection.

    Produced only by the access-path pass (:mod:`repro.optimizer.access`)
    — the SQL translator always emits plain :class:`Scan` leaves.

    ``bounds`` is the key predicate as ``(op, expr)`` pairs over
    ``key_attr`` (one pair for ``=``/single-sided ranges, two for a
    two-sided range); the bound expressions are free of this scan's own
    attributes, so any attribute they mention is correlation resolved
    from the environment (the Eqv. 1/4 hot path).  ``residual`` is the
    remainder of the original selection, evaluated on matching rows.
    ``projection`` (base-column positions) narrows the output schema;
    ``None`` keeps every column.  ``source_names`` always holds the full
    qualified column list so :meth:`free_attrs` knows the residual's own
    columns are bound here even when projected away.
    """

    __slots__ = ("index_name", "index_kind", "key_attr", "bounds", "residual", "projection", "source_names")

    def __init__(
        self,
        table_name: str,
        schema: Schema,
        qualifier: str,
        index_name: str,
        index_kind: str,
        key_attr: str,
        bounds: tuple,
        residual: Expr | None,
        projection: tuple[int, ...] | None,
        source_names: tuple[str, ...],
    ):
        super().__init__(table_name, schema, qualifier)
        self.index_name = index_name
        self.index_kind = index_kind
        self.key_attr = key_attr
        self.bounds = tuple(bounds)
        self.residual = residual
        self.projection = tuple(projection) if projection is not None else None
        self.source_names = tuple(source_names)

    def _input_names(self):
        # A leaf binds its own columns: without this override the residual
        # predicate's references to this table would count as free
        # (correlation) attributes of the whole plan.
        return frozenset(self.source_names)

    def exprs(self):
        expressions = [expr for _, expr in self.bounds]
        if self.residual is not None:
            expressions.append(self.residual)
        return tuple(expressions)

    def _rename_subscripts(self, mapping):
        bounds = tuple((op, expr.rename_attrs(mapping)) for op, expr in self.bounds)
        residual = self.residual.rename_attrs(mapping) if self.residual is not None else None
        return IndexScan(
            self.table_name,
            self.schema,
            self.qualifier,
            self.index_name,
            self.index_kind,
            self.key_attr,
            bounds,
            residual,
            self.projection,
            self.source_names,
        )

    def key_sql(self) -> str:
        return " and ".join(f"{self.key_attr} {op} {expr.sql()}" for op, expr in self.bounds)

    def label(self):
        target = self.table_name
        if self.qualifier:
            target = f"{self.table_name} as {self.qualifier}"
        parts = [f"{target} via {self.index_name}:{self.index_kind}", self.key_sql()]
        if self.residual is not None:
            parts.append(f"residual {self.residual.sql()}")
        if self.projection is not None:
            parts.append(f"cols {len(self.projection)}/{len(self.source_names)}")
        return f"IndexScan({' | '.join(parts)})"


# ---------------------------------------------------------------------------
# Unary operators
# ---------------------------------------------------------------------------


class UnaryOperator(Operator):
    """Base for operators with a single input."""

    __slots__ = ("child",)

    def __init__(self, child: Operator, schema: Schema):
        super().__init__(schema)
        self.child = child

    def children(self):
        return (self.child,)


class Select(UnaryOperator):
    """Selection σ — keeps rows whose predicate evaluates to TRUE.

    The predicate may contain nested algebraic expressions (subqueries);
    this is exactly the shape the canonical SQL translation produces and
    the unnesting rewriter consumes.
    """

    __slots__ = ("predicate",)

    def __init__(self, child: Operator, predicate: Expr):
        super().__init__(child, child.schema)
        self.predicate = predicate

    def replace_children(self, children):
        (child,) = children
        return Select(child, self.predicate)

    def exprs(self):
        return (self.predicate,)

    def _rename_subscripts(self, mapping):
        return Select(self.child, self.predicate.rename_attrs(mapping))

    def label(self):
        return f"Select[{self.predicate.sql()}]"


class BypassSelect(UnaryOperator):
    """Bypass selection σ± — partitions the input into two streams.

    ``positive`` receives rows whose predicate is TRUE; ``negative``
    receives the complement (FALSE or UNKNOWN), so the two streams always
    form a disjoint partition of the input bag.  Consume via
    :attr:`positive` / :attr:`negative`.
    """

    __slots__ = ("predicate", "_positive", "_negative")

    def __init__(self, child: Operator, predicate: Expr):
        super().__init__(child, child.schema)
        self.predicate = predicate
        self._positive: StreamTap | None = None
        self._negative: StreamTap | None = None

    @property
    def positive(self) -> "StreamTap":
        if self._positive is None:
            self._positive = StreamTap(self, positive=True)
        return self._positive

    @property
    def negative(self) -> "StreamTap":
        if self._negative is None:
            self._negative = StreamTap(self, positive=False)
        return self._negative

    def replace_children(self, children):
        (child,) = children
        return BypassSelect(child, self.predicate)

    def exprs(self):
        return (self.predicate,)

    def _rename_subscripts(self, mapping):
        return BypassSelect(self.child, self.predicate.rename_attrs(mapping))

    def label(self):
        return f"BypassSelect±[{self.predicate.sql()}]"


class StreamTap(UnaryOperator):
    """One output stream (positive or negative) of a bypass operator."""

    __slots__ = ("positive_stream",)

    def __init__(self, bypass: Operator, positive: bool):
        if not isinstance(bypass, (BypassSelect, BypassJoin)):
            raise SchemaError("StreamTap requires a bypass operator input")
        super().__init__(bypass, bypass.schema)
        self.positive_stream = positive

    def replace_children(self, children):
        (bypass,) = children
        if isinstance(bypass, (BypassSelect, BypassJoin)):
            return bypass.positive if self.positive_stream else bypass.negative
        raise SchemaError("StreamTap child must remain a bypass operator")

    def label(self):
        return "+stream" if self.positive_stream else "−stream"


class Project(UnaryOperator):
    """Bag projection Π onto a list of attribute names (no dedup)."""

    __slots__ = ("names",)

    def __init__(self, child: Operator, names: Sequence[str]):
        super().__init__(child, child.schema.project(names))
        self.names = tuple(names)

    def replace_children(self, children):
        (child,) = children
        return Project(child, self.names)

    def label(self):
        return f"Project[{', '.join(self.names)}]"


class Distinct(UnaryOperator):
    """Duplicate elimination Π^D (bag → set)."""

    def __init__(self, child: Operator):
        super().__init__(child, child.schema)

    def replace_children(self, children):
        (child,) = children
        return Distinct(child)

    def label(self):
        return "Distinct"


class Rename(UnaryOperator):
    """Renaming ρ — e.g. ``ρ t1'←t1`` in Equivalence 5."""

    __slots__ = ("mapping",)

    def __init__(self, child: Operator, mapping: dict[str, str]):
        super().__init__(child, child.schema.rename(mapping))
        self.mapping = dict(mapping)

    def replace_children(self, children):
        (child,) = children
        return Rename(child, self.mapping)

    def label(self):
        pairs = ", ".join(f"{new}←{old}" for old, new in self.mapping.items())
        return f"Rename[{pairs}]"


class Map(UnaryOperator):
    """Map χ — extends each tuple with one computed attribute.

    ``χ g:fO(g1,g2)`` in Equivalence 4 recombines decomposed aggregate
    partials; the front-end also uses maps for computed select items.
    """

    __slots__ = ("name", "expression")

    def __init__(self, child: Operator, name: str, expression: Expr):
        super().__init__(child, child.schema.extend(Column(name)))
        self.name = name
        self.expression = expression

    def replace_children(self, children):
        (child,) = children
        return Map(child, self.name, self.expression)

    def exprs(self):
        return (self.expression,)

    def _rename_subscripts(self, mapping):
        return Map(self.child, self.name, self.expression.rename_attrs(mapping))

    def label(self):
        return f"Map[{self.name} := {self.expression.sql()}]"


class Numbering(UnaryOperator):
    """Numbering ν — tags each tuple with a unique sequence number.

    Turns any bag into a set, which is what makes Equivalence 5 correct
    over multisets (§3.7): the number is the grouping key that reassembles
    aggregation results per original outer tuple.
    """

    __slots__ = ("name",)

    def __init__(self, child: Operator, name: str):
        super().__init__(child, child.schema.extend(Column(name)))
        self.name = name

    def replace_children(self, children):
        (child,) = children
        return Numbering(child, self.name)

    def label(self):
        return f"Numbering[{self.name}]"


class GroupBy(UnaryOperator):
    """Unary grouping Γ — group on key attributes, evaluate aggregates.

    Output schema: the grouping keys followed by one column per aggregate.
    Defined via the binary grouping operator in the paper (Fig. 1); the
    runtime uses a hash implementation.
    """

    __slots__ = ("keys", "aggregates")

    def __init__(self, child: Operator, keys: Sequence[str], aggregates: Sequence[tuple[str, AggSpec]]):
        for key in keys:
            child.schema.position(key)  # validate
        schema = Schema(
            [child.schema[key] for key in keys] + [Column(name) for name, _ in aggregates]
        )
        super().__init__(child, schema)
        self.keys = tuple(keys)
        self.aggregates = tuple(aggregates)

    def replace_children(self, children):
        (child,) = children
        return GroupBy(child, self.keys, self.aggregates)

    def agg_specs(self):
        return tuple(spec for _, spec in self.aggregates)

    def exprs(self):
        return tuple(
            spec.arg for _, spec in self.aggregates if isinstance(spec.arg, Expr)
        )

    def label(self):
        aggs = ", ".join(f"{name}:{spec.sql()}" for name, spec in self.aggregates)
        return f"GroupBy[{', '.join(self.keys)}; {aggs}]"


class ScalarAggregate(UnaryOperator):
    """Aggregation without grouping — always produces exactly one row.

    This is the top of every translated scalar subquery (type A/JA): a
    single row holding ``f(...)`` per aggregate, with ``f(∅)`` over an
    empty input.
    """

    __slots__ = ("aggregates",)

    def __init__(self, child: Operator, aggregates: Sequence[tuple[str, AggSpec]]):
        schema = Schema([Column(name) for name, _ in aggregates])
        super().__init__(child, schema)
        self.aggregates = tuple(aggregates)

    def replace_children(self, children):
        (child,) = children
        return ScalarAggregate(child, self.aggregates)

    def agg_specs(self):
        return tuple(spec for _, spec in self.aggregates)

    def exprs(self):
        return tuple(
            spec.arg for _, spec in self.aggregates if isinstance(spec.arg, Expr)
        )

    def label(self):
        aggs = ", ".join(f"{name}:{spec.sql()}" for name, spec in self.aggregates)
        return f"ScalarAgg[{aggs}]"


class Sort(UnaryOperator):
    """Sort by a list of ``(attribute, ascending)`` pairs (stable)."""

    __slots__ = ("keys",)

    def __init__(self, child: Operator, keys: Sequence[tuple[str, bool]]):
        for name, _ in keys:
            child.schema.position(name)
        super().__init__(child, child.schema)
        self.keys = tuple(keys)

    def replace_children(self, children):
        (child,) = children
        return Sort(child, self.keys)

    def label(self):
        parts = ", ".join(f"{n} {'ASC' if asc else 'DESC'}" for n, asc in self.keys)
        return f"Sort[{parts}]"


class Limit(UnaryOperator):
    """Keep the first ``count`` rows of the input."""

    __slots__ = ("count",)

    def __init__(self, child: Operator, count: int):
        super().__init__(child, child.schema)
        self.count = count

    def replace_children(self, children):
        (child,) = children
        return Limit(child, self.count)

    def label(self):
        return f"Limit[{self.count}]"


# ---------------------------------------------------------------------------
# Binary operators
# ---------------------------------------------------------------------------


class BinaryOperator(Operator):
    """Base for operators with two inputs."""

    __slots__ = ("left", "right")

    def __init__(self, left: Operator, right: Operator, schema: Schema):
        super().__init__(schema)
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)


class CrossProduct(BinaryOperator):
    """Cartesian product ×."""

    def __init__(self, left: Operator, right: Operator):
        super().__init__(left, right, left.schema.concat(right.schema))

    def replace_children(self, children):
        left, right = children
        return CrossProduct(left, right)

    def label(self):
        return "CrossProduct"


class Join(BinaryOperator):
    """Inner θ-join ⋈p."""

    __slots__ = ("predicate",)

    def __init__(self, left: Operator, right: Operator, predicate: Expr):
        super().__init__(left, right, left.schema.concat(right.schema))
        self.predicate = predicate

    def replace_children(self, children):
        left, right = children
        return Join(left, right, self.predicate)

    def exprs(self):
        return (self.predicate,)

    def _rename_subscripts(self, mapping):
        return Join(self.left, self.right, self.predicate.rename_attrs(mapping))

    def label(self):
        return f"Join[{self.predicate.sql()}]"


class IndexNLJoin(Join):
    """Index nested-loop join: probe the right table's index per left row.

    Chosen by the access-path pass when the right input is a plain
    :class:`Scan` whose table has a hash index on one side of an
    equi-join key.  ``predicate`` keeps the *full* original join
    predicate (so semantics and cardinality estimation are unchanged);
    ``residual`` is the part left over after removing the indexed
    equi-conjunct, evaluated on each probed pair.
    """

    __slots__ = ("index_name", "index_kind", "left_key", "right_key", "residual")

    def __init__(
        self,
        left: Operator,
        right: Operator,
        predicate: Expr,
        index_name: str,
        index_kind: str,
        left_key: str,
        right_key: str,
        residual: Expr | None,
    ):
        super().__init__(left, right, predicate)
        self.index_name = index_name
        self.index_kind = index_kind
        self.left_key = left_key
        self.right_key = right_key
        self.residual = residual

    def replace_children(self, children):
        left, right = children
        if type(right) is not Scan:
            # The probe side must stay a plain base-table scan; degrade to
            # an ordinary join if a transformation changed it.
            return Join(left, right, self.predicate)
        return IndexNLJoin(
            left,
            right,
            self.predicate,
            self.index_name,
            self.index_kind,
            self.left_key,
            self.right_key,
            self.residual,
        )

    def exprs(self):
        if self.residual is not None:
            return (self.predicate, self.residual)
        return (self.predicate,)

    def _rename_subscripts(self, mapping):
        return IndexNLJoin(
            self.left,
            self.right,
            self.predicate.rename_attrs(mapping),
            self.index_name,
            self.index_kind,
            mapping.get(self.left_key, self.left_key),
            mapping.get(self.right_key, self.right_key),
            self.residual.rename_attrs(mapping) if self.residual is not None else None,
        )

    def label(self):
        parts = [
            f"{self.left_key} = {self.right_key} via {self.index_name}:{self.index_kind}"
        ]
        if self.residual is not None:
            parts.append(f"residual {self.residual.sql()}")
        return f"IndexNLJoin[{' | '.join(parts)}]"


class LeftOuterJoin(BinaryOperator):
    """Leftouterjoin with default values for unmatched left tuples.

    ``defaults`` maps right-side attribute names to constant values used
    when a left tuple finds no partner; all other right attributes become
    NULL.  Setting the aggregate column's default to ``f(∅)`` is exactly
    the paper's ``⟕^{g:f(∅)}`` — the fix for the *count bug*.
    """

    __slots__ = ("predicate", "defaults")

    def __init__(self, left: Operator, right: Operator, predicate: Expr, defaults: dict[str, object] | None = None):
        super().__init__(left, right, left.schema.concat(right.schema))
        self.predicate = predicate
        self.defaults = dict(defaults or {})
        for name in self.defaults:
            right.schema.position(name)  # defaults apply to the right side

    def replace_children(self, children):
        left, right = children
        return LeftOuterJoin(left, right, self.predicate, self.defaults)

    def exprs(self):
        return (self.predicate,)

    def _rename_subscripts(self, mapping):
        return LeftOuterJoin(self.left, self.right, self.predicate.rename_attrs(mapping), self.defaults)

    def label(self):
        if self.defaults:
            pairs = ", ".join(f"{k}:{v!r}" for k, v in self.defaults.items())
            return f"LeftOuterJoin[{self.predicate.sql()} | defaults {pairs}]"
        return f"LeftOuterJoin[{self.predicate.sql()}]"


class SemiJoin(BinaryOperator):
    """Left semijoin ⋉ — left tuples with at least one partner."""

    __slots__ = ("predicate",)

    def __init__(self, left: Operator, right: Operator, predicate: Expr):
        super().__init__(left, right, left.schema)
        self.predicate = predicate

    def replace_children(self, children):
        left, right = children
        return SemiJoin(left, right, self.predicate)

    def exprs(self):
        return (self.predicate,)

    def _rename_subscripts(self, mapping):
        return SemiJoin(self.left, self.right, self.predicate.rename_attrs(mapping))

    def label(self):
        return f"SemiJoin[{self.predicate.sql()}]"


class AntiJoin(BinaryOperator):
    """Left antijoin ▷ — left tuples with no partner."""

    __slots__ = ("predicate",)

    def __init__(self, left: Operator, right: Operator, predicate: Expr):
        super().__init__(left, right, left.schema)
        self.predicate = predicate

    def replace_children(self, children):
        left, right = children
        return AntiJoin(left, right, self.predicate)

    def exprs(self):
        return (self.predicate,)

    def _rename_subscripts(self, mapping):
        return AntiJoin(self.left, self.right, self.predicate.rename_attrs(mapping))

    def label(self):
        return f"AntiJoin[{self.predicate.sql()}]"


class BypassJoin(BinaryOperator):
    """Bypass join ⋈± (two-valued logic, cf. [17]).

    The positive stream holds concatenated pairs satisfying the predicate;
    the negative stream holds the remaining pairs of the cross product.
    Consume via :attr:`positive` / :attr:`negative`.
    """

    __slots__ = ("predicate", "_positive", "_negative")

    def __init__(self, left: Operator, right: Operator, predicate: Expr):
        super().__init__(left, right, left.schema.concat(right.schema))
        self.predicate = predicate
        self._positive: StreamTap | None = None
        self._negative: StreamTap | None = None

    @property
    def positive(self) -> StreamTap:
        if self._positive is None:
            self._positive = StreamTap(self, positive=True)
        return self._positive

    @property
    def negative(self) -> StreamTap:
        if self._negative is None:
            self._negative = StreamTap(self, positive=False)
        return self._negative

    def replace_children(self, children):
        left, right = children
        return BypassJoin(left, right, self.predicate)

    def exprs(self):
        return (self.predicate,)

    def _rename_subscripts(self, mapping):
        return BypassJoin(self.left, self.right, self.predicate.rename_attrs(mapping))

    def label(self):
        return f"BypassJoin±[{self.predicate.sql()}]"


class BinaryGroupBy(BinaryOperator):
    """Binary grouping Γ — ``left Γ g; lkey θ rkey; f right``.

    For every left tuple ``x``, evaluates ``f`` over the bag of right
    tuples ``y`` with ``x.lkey θ y.rkey`` and emits ``x ∘ [g: f(...)]``.
    An empty match bag yields ``f(∅)`` — no count bug by construction.

    ``spec.arg`` is evaluated over the *right* schema; a STAR argument
    consumes the projection of the right tuple onto ``star_names`` (the
    rewriter passes the original inner block's attributes so that e.g.
    ``COUNT(DISTINCT *)`` keeps its meaning after the bypass join widened
    the tuples).
    """

    __slots__ = ("name", "left_key", "right_key", "op", "spec", "star_names")

    def __init__(
        self,
        left: Operator,
        right: Operator,
        name: str,
        left_key: str,
        right_key: str,
        spec: AggSpec,
        op: str = "=",
        star_names: Sequence[str] | None = None,
    ):
        left.schema.position(left_key)
        right.schema.position(right_key)
        super().__init__(left, right, left.schema.extend(Column(name)))
        self.name = name
        self.left_key = left_key
        self.right_key = right_key
        self.op = op
        self.spec = spec
        self.star_names = tuple(star_names) if star_names else None

    def replace_children(self, children):
        left, right = children
        return BinaryGroupBy(
            left, right, self.name, self.left_key, self.right_key,
            self.spec, self.op, self.star_names,
        )

    def agg_specs(self):
        return (self.spec,)

    def exprs(self):
        if isinstance(self.spec.arg, Expr):
            return (self.spec.arg,)
        return ()

    def label(self):
        return (
            f"BinaryGroupBy[{self.name}; {self.left_key} {self.op} "
            f"{self.right_key}; {self.spec.sql()}]"
        )


class _SetOperator(BinaryOperator):
    """Base for union-family operators; validates arity compatibility."""

    def __init__(self, left: Operator, right: Operator):
        if len(left.schema) != len(right.schema):
            raise SchemaError(
                f"{type(self).__name__} inputs have different arity: "
                f"{len(left.schema)} vs {len(right.schema)}"
            )
        super().__init__(left, right, left.schema)


class UnionAll(_SetOperator):
    """Disjoint/bag union ∪̇ — concatenates the inputs.

    The final operator of every unnested bypass plan: the positive and
    negative streams are disjoint by construction, so bag concatenation
    preserves duplicates exactly (§3.7).
    """

    def replace_children(self, children):
        left, right = children
        return UnionAll(left, right)

    def label(self):
        return "UnionAll(∪̇)"


class Union(_SetOperator):
    """Set union with duplicate elimination (SQL UNION)."""

    def replace_children(self, children):
        left, right = children
        return Union(left, right)

    def label(self):
        return "Union"


class Intersect(_SetOperator):
    """Set intersection (SQL INTERSECT)."""

    def replace_children(self, children):
        left, right = children
        return Intersect(left, right)

    def label(self):
        return "Intersect"


class Difference(_SetOperator):
    """Set difference (SQL EXCEPT)."""

    def replace_children(self, children):
        left, right = children
        return Difference(left, right)

    def label(self):
        return "Difference"


def union_all(streams: Sequence[Operator]) -> Operator:
    """Fold a list of streams into a left-deep chain of ∪̇ nodes."""
    if not streams:
        raise SchemaError("union_all requires at least one stream")
    result = streams[0]
    for stream in streams[1:]:
        result = UnionAll(result, stream)
    return result
