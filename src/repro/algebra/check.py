"""Structural plan validation.

``validate_plan`` walks a logical plan DAG and checks the invariants the
rest of the system relies on.  The rewriter's tests run every generated
plan through it, and ``Database.explain`` validates in debug mode —
catching malformed rewrites at plan-build time instead of as confusing
runtime errors.

Checked invariants:

* every subscript expression references only attributes available from
  the operator's inputs or from an enclosing block (collected down the
  nesting chain);
* the plan's own free attributes are empty at the top level (a query
  must be self-contained);
* stream taps sit on bypass operators; both streams of a bypass operator
  are distinct taps;
* leftouterjoin defaults name right-side attributes;
* union-family inputs agree in arity;
* grouping keys, sort keys, and projections name existing columns
  (enforced by construction — re-checked here for hand-built plans);
* schemas contain no duplicate attribute names (ditto).
"""

from __future__ import annotations

from repro.algebra import expr as E
from repro.algebra import ops as L
from repro.errors import SchemaError


class PlanInvariantError(SchemaError):
    """A structural invariant is violated; carries the offending node."""

    def __init__(self, message: str, node: L.Operator):
        super().__init__(f"{message} (at {node.label()})")
        self.node = node


def validate_plan(plan: L.Operator, outer_names: frozenset[str] = frozenset()) -> None:
    """Raise :class:`PlanInvariantError` on the first violated invariant.

    ``outer_names`` holds the attributes an enclosing block provides
    (used when validating a nested plan in isolation).
    """
    _Validator(outer_names).visit(plan, top_level=True)


class _Validator:
    def __init__(self, outer_names: frozenset[str]):
        self.outer_names = outer_names
        self._seen: set[int] = set()

    def visit(self, node: L.Operator, top_level: bool = False) -> None:
        if top_level:
            leaked = node.free_attrs() - self.outer_names
            if leaked:
                raise PlanInvariantError(
                    f"plan has unbound free attributes {sorted(leaked)}", node
                )
        if id(node) in self._seen:
            return
        self._seen.add(id(node))

        self._check_node(node)

        input_names = frozenset().union(
            *(frozenset(child.schema.names) for child in node.children())
        ) if node.children() else frozenset()
        available = input_names | self.outer_names

        for expression in node.exprs():
            self._check_expression(node, expression, available)
        for spec in node.agg_specs():
            if isinstance(spec.arg, E.Expr):
                self._check_expression(node, spec.arg, available)

        for child in node.children():
            self.visit(child)

    # -- per-node invariants ---------------------------------------------------

    def _check_node(self, node: L.Operator) -> None:
        if isinstance(node, L.StreamTap) and not isinstance(
            node.child, (L.BypassSelect, L.BypassJoin)
        ):
            raise PlanInvariantError("stream tap over a non-bypass operator", node)

        if isinstance(node, (L.BypassSelect, L.BypassJoin)):
            positive = node._positive
            negative = node._negative
            if positive is not None and negative is not None and positive is negative:
                raise PlanInvariantError("bypass streams must be distinct taps", node)

        if isinstance(node, L.LeftOuterJoin):
            right_names = set(node.right.schema.names)
            for name in node.defaults:
                if name not in right_names:
                    raise PlanInvariantError(
                        f"outer-join default {name!r} is not a right-side attribute",
                        node,
                    )

        if isinstance(node, (L.UnionAll, L.Union, L.Intersect, L.Difference)):
            if len(node.left.schema) != len(node.right.schema):
                raise PlanInvariantError("union-family arity mismatch", node)

        if isinstance(node, L.Project):
            child_names = set(node.child.schema.names)
            for name in node.names:
                if name not in child_names:
                    raise PlanInvariantError(
                        f"projection names unknown column {name!r}", node
                    )

        if isinstance(node, L.GroupBy):
            child_names = set(node.child.schema.names)
            for key in node.keys:
                if key not in child_names:
                    raise PlanInvariantError(
                        f"grouping key {key!r} is not an input column", node
                    )

        names = node.schema.names
        if len(set(names)) != len(names):
            raise PlanInvariantError("duplicate attribute in schema", node)

    # -- expressions (recursing into nested plans) --------------------------------

    def _check_expression(
        self, node: L.Operator, expression: E.Expr, available: frozenset[str]
    ) -> None:
        unknown = expression.free_attrs() - available
        if unknown:
            raise PlanInvariantError(
                f"subscript references unknown attributes {sorted(unknown)}", node
            )
        for part in expression.walk():
            if isinstance(part, E.SubqueryExpr):
                validate_plan(part.plan, outer_names=available)
