"""The nemesis: seeded fault schedules, and schedule shrinking.

A schedule is a list of :class:`NemesisEvent` — ``(kind, target, start,
end, param)`` — generated from one seed, so a failing run is reproduced
by its seed alone.  The kinds map onto the cluster's fault levers:

* ``isolate_primary`` — cut the reigning leader's links to the
  coordinator and every peer **but keep the client links**: the leader
  keeps acknowledging writes it can no longer replicate while the
  coordinator elects a successor — the split-brain generator;
* ``isolate_node`` — cut every link touching one node;
* ``partition_link`` — cut one specific pair;
* ``crash_restart`` — ``Database.close()`` at ``start``, reopen at
  ``end`` (rejoin as a follower of whoever leads by then);
* ``pause_coordinator`` — the failure detector itself goes quiet;
* ``clock_skew`` — shift one node's :class:`~repro.sim.clock.SkewedClock`
  by ``param`` seconds, heal at ``end``.

:func:`shrink` is a ddmin-style minimizer: given a seed that produced
checker violations, it bisects the event list — dropping halves, then
single events — re-running the simulation each time, and returns the
smallest schedule that still fails.  The shrunk schedule is what a
human debugs; the seed is what the machine replays.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

KINDS = (
    "isolate_primary",
    "isolate_node",
    "partition_link",
    "crash_restart",
    "pause_coordinator",
    "clock_skew",
)


@dataclass(frozen=True)
class NemesisEvent:
    kind: str
    target: str
    start: float
    end: float
    param: float = 0.0

    def describe(self) -> str:
        extra = f" param={self.param:+.3f}" if self.kind == "clock_skew" else ""
        return f"{self.kind} target={self.target} [{self.start:.3f}, {self.end:.3f}]{extra}"


def generate_schedule(
    rng: random.Random, node_names: list, duration: float
) -> list[NemesisEvent]:
    """3-6 faults drawn from one RNG, sorted by start time.

    Starts leave the first half-second alone (the cluster finishes its
    bootstrap handshakes) and every fault *ends* at least a second
    before the workload does, so the settle phase measures convergence,
    not fault overhang.
    """
    events = []
    count = 3 + rng.randrange(4)
    for _ in range(count):
        kind = KINDS[rng.randrange(len(KINDS))]
        start = 0.5 + rng.random() * max(duration - 3.0, 1.0)
        length = 0.4 + rng.random() * 1.6
        end = min(start + length, duration - 1.0)
        if end <= start:
            end = start + 0.2
        target = node_names[rng.randrange(len(node_names))]
        param = 0.0
        if kind == "clock_skew":
            param = (rng.random() * 4.5 + 0.5) * (1 if rng.random() < 0.5 else -1)
        if kind == "partition_link":
            other = node_names[rng.randrange(len(node_names))]
            if other == target:
                other = node_names[(node_names.index(target) + 1) % len(node_names)]
            target = f"{target}:{other}"
        events.append(
            NemesisEvent(kind, target, round(start, 3), round(end, 3), round(param, 3))
        )
    events.sort(key=lambda event: (event.start, event.end, event.kind, event.target))
    return events


def install_schedule(cluster, events: list[NemesisEvent]) -> None:
    """Schedule every event's apply/revert on the cluster's clock and
    record the fault intervals in the history."""
    # Revert state for dynamic targets (the leader resolved at fire
    # time), scoped to this run so replays never see a stale entry.
    links: dict[int, list] = {}
    for index, event in enumerate(events):
        cluster.recorder.fault(event.kind, event.start, event.end, event.target)
        cluster.clock.call_at(
            event.start,
            lambda event=event, index=index: _apply(cluster, event, links, index),
            f"fault+{event.kind}",
        )
        cluster.clock.call_at(
            event.end,
            lambda event=event, index=index: _revert(cluster, event, links, index),
            f"fault-{event.kind}",
        )


def _apply(cluster, event: NemesisEvent, links: dict, index: int) -> None:
    cluster.trace.append(f"{cluster.clock.now():.4f} nemesis + {event.describe()}")
    if event.kind == "isolate_primary":
        _, pairs = cluster.leader_links()
        links[index] = pairs
        for a, b in pairs:
            cluster.net.partition(a, b)
    elif event.kind == "isolate_node":
        cluster.net.isolate(cluster.nodes[event.target].url)
    elif event.kind == "partition_link":
        a, b = event.target.split(":")
        cluster.net.partition(cluster.nodes[a].url, cluster.nodes[b].url)
    elif event.kind == "crash_restart":
        cluster.crash(event.target)
    elif event.kind == "pause_coordinator":
        cluster.pause_coordinator(True)
    elif event.kind == "clock_skew":
        cluster.skew(event.target, event.param)


def _revert(cluster, event: NemesisEvent, links: dict, index: int) -> None:
    cluster.trace.append(f"{cluster.clock.now():.4f} nemesis - {event.describe()}")
    if event.kind == "isolate_primary":
        for a, b in links.pop(index, ()):
            cluster.net.heal(a, b)
    elif event.kind == "isolate_node":
        cluster.net.unisolate(cluster.nodes[event.target].url)
    elif event.kind == "partition_link":
        a, b = event.target.split(":")
        cluster.net.heal(cluster.nodes[a].url, cluster.nodes[b].url)
    elif event.kind == "crash_restart":
        cluster.restart(event.target)
    elif event.kind == "pause_coordinator":
        cluster.pause_coordinator(False)
    elif event.kind == "clock_skew":
        cluster.skew(event.target, 0.0)


def shrink(events: list[NemesisEvent], still_fails) -> list[NemesisEvent]:
    """ddmin-lite: the smallest event subset for which ``still_fails``
    (a callable taking an event list) remains true.

    Tries dropping progressively smaller chunks — halves first, then
    quarters, down to single events — restarting from halves after any
    successful removal.  Each probe is one full simulation run, so the
    candidate count matters more than asymptotic elegance.
    """
    current = list(events)
    chunk = max(len(current) // 2, 1)
    while chunk >= 1 and len(current) > 1:
        removed_any = False
        index = 0
        while index < len(current):
            candidate = current[:index] + current[index + chunk :]
            if candidate and still_fails(candidate):
                current = candidate
                removed_any = True
            else:
                index += chunk
        if removed_any:
            chunk = max(len(current) // 2, 1)
            if chunk == len(current):
                chunk //= 2
        else:
            chunk //= 2
    return current
