"""A whole replica set in one process, on virtual time.

:class:`SimCluster` builds the same objects the CLI deploys as separate
processes — a primary :class:`~repro.service.server.QueryService`, N-1
:class:`~repro.replication.replica.ReplicaService` followers, one
:class:`~repro.replication.failover.ClusterCoordinator`, and a handful
of :class:`~repro.replication.routing.ReplicaSetClient` workload clients
— and wires them together through the two seams: every component gets
the shared :class:`~repro.sim.clock.VirtualClock` (per node wrapped in a
:class:`~repro.sim.clock.SkewedClock` so the nemesis can skew it) and a
per-origin :class:`~repro.sim.transport.SimTransport`, so partitions are
per-link and a request's origin matters.

Execution is single-threaded by construction: each *actor turn* — one
client operation, one follower poll, one coordinator health round, one
status sample — is a synchronous callback on the clock's event heap, and
``max_wait_seconds=0.0`` keeps every server-side gate non-blocking.  The
heap's ``(time, seq)`` order therefore fully determines the
interleaving, which is what makes a seed replayable.

A *crash* closes the node's database (the durable directory keeps
whatever the WAL held — exactly a SIGKILL) and marks it down on the net;
a *restart* reopens the directory, as a follower of the current leader
when one exists elsewhere (exercising rejoin-with-truncation in-sim) or
as the unfenced primary when the cluster never moved on.
"""

from __future__ import annotations

import random

from repro import Database
from repro.errors import NotPrimary, ReproError, ServiceUnavailable
from repro.replication.failover import ClusterCoordinator, CoordinatorConfig
from repro.replication.replica import ReplicaConfig, ReplicaService, ReplicationFollower
from repro.replication.routing import ReplicaSetClient
from repro.service.server import QueryService, ServerConfig
from repro.sim.clock import SkewedClock, VirtualClock
from repro.sim.history import HistoryRecorder, converged
from repro.sim.transport import SimNet

#: The workload table: client id, per-client sequence number, payload.
WORKLOAD_TABLE = ("kv", ["C", "S", "V"], [(-1, 0, 0)])

COORDINATOR_ORIGIN = "coordinator"


class SimNode:
    """One simulated node's mutable state."""

    def __init__(self, name: str, url: str, data_dir: str, clock: SkewedClock):
        self.name = name
        self.url = url
        self.data_dir = data_dir
        self.clock = clock
        self.role = "replica"
        self.db: Database | None = None
        self.service: QueryService | None = None
        self.follower: ReplicationFollower | None = None
        self.step_handle = None
        self.crashed = False
        self.just_restarted = False


class SimCluster:
    """Builds, runs, faults, and tears down one simulated replica set."""

    def __init__(
        self,
        clock: VirtualClock,
        net: SimNet,
        rng: random.Random,
        recorder: HistoryRecorder,
        base_dir: str,
        trace: list,
        node_count: int = 3,
        client_count: int = 3,
        break_rule: str | None = None,
    ):
        if node_count < 2:
            raise ValueError("a cluster needs at least two nodes")
        self.clock = clock
        self.net = net
        self.rng = rng
        self.recorder = recorder
        self.trace = trace
        self.break_rule = break_rule
        self.nodes: dict[str, SimNode] = {}
        for index in range(node_count):
            name = f"n{index + 1}"
            url = f"http://{name}"
            node = SimNode(name, url, f"{base_dir}/{name}", SkewedClock(clock))
            self.nodes[name] = node
            self.net.register(url, self._handler(node))
        self.primary_name = "n1"
        self.coordinator_paused = False
        self.coordinator = ClusterCoordinator(
            CoordinatorConfig(
                nodes=tuple(node.url for node in self.nodes.values()),
                health_interval=0.25,
                failure_threshold=3,
                http_timeout=0.5,
            ),
            on_event=lambda message: self._note(f"coord {message}"),
            clock=clock,
            transport=net.transport(COORDINATOR_ORIGIN),
        )
        self.clients: list[ReplicaSetClient] = []
        self.client_rng = random.Random(rng.randrange(2**63))
        self._workload_end = 0.0
        for index in range(client_count):
            origin = f"client-{index}"
            self.clients.append(
                ReplicaSetClient(
                    self.nodes[self.primary_name].url,
                    tuple(
                        node.url
                        for node in self.nodes.values()
                        if node.name != self.primary_name
                    ),
                    timeout=1.0,
                    lsn_wait=0.05,
                    clock=clock,
                    transport=net.transport(origin),
                    budget=1.5,
                )
            )

    # -- build ---------------------------------------------------------------

    def build(self) -> None:
        """Create the primary with the workload table, bootstrap followers."""
        primary = self.nodes[self.primary_name]
        primary.role = "primary"
        name, columns, rows = WORKLOAD_TABLE
        db = Database.open(primary.data_dir)
        db.create_table(name, columns, rows)
        primary.db = db
        primary.service = QueryService(db, self._server_config(primary))
        self._maybe_break(primary.service)
        for node in self.nodes.values():
            if node.name == self.primary_name:
                continue
            self._start_replica(node, primary.url)

    def _server_config(self, node: SimNode) -> ServerConfig:
        # max_wait_seconds=0.0: no server-side gate may park — there are
        # no threads to wake it, and a non-blocking REPLICA_LAGGING is
        # what the routing layer is built to absorb.
        return ServerConfig(
            port=0,
            advertise_url=node.url,
            default_timeout=5.0,
            max_wait_seconds=0.0,
            session_ttl=None,
            clock=node.clock,
        )

    def _start_replica(self, node: SimNode, primary_url: str) -> None:
        node.role = "replica"
        follower = ReplicationFollower(
            ReplicaConfig(
                primary_url=primary_url,
                data_dir=node.data_dir,
                poll_wait=0.0,
                http_timeout=1.0,
                retry_jitter=0.0,
            ),
            on_install=lambda db, node=node: self._on_install(node, db),
            rng=random.Random(self.rng.randrange(2**63)),
            clock=node.clock,
            transport=self.net.transport(node.url),
        )
        node.follower = follower
        node.db = follower.bootstrap()
        service = ReplicaService(node.db, self._server_config(node), follower)
        service.on_promote = lambda node=node: self._halt_steps(node)
        self._maybe_break(service)
        node.service = service
        self._schedule_step(node, 0.0)

    def _handler(self, node: SimNode):
        def handle(method: str, path: str, payload: dict):
            service = node.service
            if service is None:
                raise ServiceUnavailable(f"sim: {node.name} has no service")
            return service.handle(method, path, payload)

        return handle

    def _on_install(self, node: SimNode, db: Database) -> None:
        node.db = db
        if node.service is not None:
            node.service._db = db

    def _maybe_break(self, service: QueryService) -> None:
        """Disable one protocol rule (the checker self-test's seeded bug).

        ``ignore-fencing`` makes the node's write gate swallow
        ``NOT_PRIMARY``: a fenced or stale-era ex-primary keeps
        acknowledging writes the cluster has already disowned — exactly
        the split-brain the fencing era exists to prevent, so the
        history checker must report it.
        """
        if self.break_rule != "ignore-fencing":
            return
        original = service._write_gate

        def leaky_gate(payload: dict) -> None:
            try:
                original(payload)
            except NotPrimary:
                pass

        service._write_gate = leaky_gate

    # -- scheduled actors ----------------------------------------------------

    def _schedule_step(self, node: SimNode, delay: float) -> None:
        node.step_handle = self.clock.call_later(
            delay, lambda: self._follower_tick(node), f"{node.name}.step"
        )

    def _halt_steps(self, node: SimNode) -> bool:
        if node.step_handle is not None:
            node.step_handle.cancel()
            node.step_handle = None
        return True

    def _follower_tick(self, node: SimNode) -> None:
        follower = node.follower
        service = node.service
        if node.crashed or follower is None or service is None:
            return
        if getattr(service, "promoted", False) or follower.broken is not None:
            return
        try:
            follower.step(wait=0.0)
        except ReproError:
            pass  # unreachable primary / stale stream: next tick retries
        self._schedule_step(node, 0.03 + self.rng.random() * 0.04)

    def start_coordinator(self) -> None:
        self._coordinator_tick()

    def _coordinator_tick(self) -> None:
        if not self.coordinator_paused:
            self.coordinator.step()
        self.clock.call_later(
            self.coordinator.config.health_interval, self._coordinator_tick, "coord.step"
        )

    def start_workload(self, duration: float) -> None:
        self._workload_end = self.clock.now() + duration
        for index in range(len(self.clients)):
            self.clock.call_later(
                0.05 + self.client_rng.random() * 0.1,
                lambda index=index: self._client_tick(index),
                f"client-{index}.op",
            )
        self._sampler_tick()

    def _client_tick(self, index: int) -> None:
        if self.clock.now() >= self._workload_end:
            return
        self._client_op(index)
        self.clock.call_later(
            0.05 + self.client_rng.random() * 0.1,
            lambda: self._client_tick(index),
            f"client-{index}.op",
        )

    def _client_op(self, index: int) -> None:
        client = self.clients[index]
        name = f"client-{index}"
        recorder = self.recorder
        if self.client_rng.random() < 0.6:
            seq = sum(
                1
                for op in recorder.ops
                if op["client"] == name and op["kind"] == "write"
            )
            op = recorder.invoke(name, "write", self.clock.now(), cid=index, seq=seq)
            try:
                result = client.execute(f"INSERT INTO kv VALUES ({index}, {seq}, {seq})")
            except ReproError as error:
                recorder.fail(op, self.clock.now(), error.code)
            else:
                recorder.ok(
                    op,
                    self.clock.now(),
                    era=result.era,
                    commit_lsn=result.commit_lsn,
                )
        else:
            op = recorder.invoke(name, "read", self.clock.now(), cid=index)
            try:
                result = client.query(f"SELECT S FROM kv WHERE C = {index}")
            except ReproError as error:
                recorder.fail(op, self.clock.now(), error.code)
            else:
                recorder.ok(
                    op,
                    self.clock.now(),
                    era=result.era,
                    applied_lsn=result.applied_lsn,
                    values=sorted(row[0] for row in result.rows),
                )

    def _sampler_tick(self) -> None:
        self.sample()
        self.clock.call_later(0.1, self._sampler_tick, "sample")

    def sample(self) -> dict:
        """One status observation of every node, appended to the history."""
        nodes = {}
        for node in self.nodes.values():
            if node.crashed or node.service is None:
                nodes[node.name] = {"alive": False}
                continue
            topology = node.service._topology()
            nodes[node.name] = {
                "alive": True,
                "role": topology.get("role"),
                "era": topology.get("era", 0),
                "fenced": bool(topology.get("fenced")),
                "fenced_era": topology.get("fenced_era", 0),
                "applied_lsn": topology.get("applied_lsn", 0),
                "broken": topology.get("broken"),
                "restarted": node.just_restarted,
            }
            node.just_restarted = False
        self.recorder.status(self.clock.now(), nodes)
        return nodes

    # -- faults --------------------------------------------------------------

    def crash(self, name: str) -> None:
        node = self.nodes[name]
        if node.crashed:
            return
        self._note(f"cluster crash {name}")
        if node.service is not None and getattr(node.service, "promoted", False):
            node.role = "primary"
        node.crashed = True
        self.net.set_down(node.url, True)
        self._halt_steps(node)
        if node.follower is not None:
            node.follower.close()
        if node.db is not None:
            node.db.close()
        node.service = None
        node.follower = None
        node.db = None

    def restart(self, name: str) -> None:
        node = self.nodes[name]
        if not node.crashed:
            return
        leader = self.coordinator.leader_url
        self._note(f"cluster restart {name} (leader {leader})")
        node.crashed = False
        node.just_restarted = True
        self.net.set_down(node.url, False)
        if leader is not None and leader != node.url:
            # The cluster (possibly) moved on: rejoin as a follower of
            # the current leader — local recovery first, then the stream
            # protocol truncates any divergent suffix.
            self._start_replica(node, leader)
        else:
            # Nothing moved on (or this node *is* the leader): resume
            # the reign from the durable directory.
            node.role = "primary"
            db = Database.open(node.data_dir)
            node.db = db
            node.service = QueryService(db, self._server_config(node))
            self._maybe_break(node.service)

    def pause_coordinator(self, paused: bool) -> None:
        self._note(f"cluster coordinator {'paused' if paused else 'resumed'}")
        self.coordinator_paused = paused

    def skew(self, name: str, offset: float) -> None:
        self._note(f"cluster skew {name} {offset:+.3f}")
        self.nodes[name].clock.offset = offset

    def leader_links(self) -> tuple[str, list[tuple[str, str]]]:
        """The current leader URL and its links to coordinator + peers
        (the split-brain cut: clients deliberately keep their links)."""
        leader = self.coordinator.leader_url or self.nodes[self.primary_name].url
        pairs = [(leader, COORDINATOR_ORIGIN)]
        pairs.extend(
            (leader, node.url) for node in self.nodes.values() if node.url != leader
        )
        return leader, pairs

    def _note(self, message: str) -> None:
        self.trace.append(f"{self.clock.now():.4f} {message}")

    # -- settling and teardown ----------------------------------------------

    def settled(self) -> bool:
        """Converged per the checker's rule, with every follower caught up."""
        nodes = {}
        for node in self.nodes.values():
            if node.crashed or node.service is None:
                return False
            topology = node.service._topology()
            nodes[node.name] = {
                "alive": True,
                "role": topology.get("role"),
                "era": topology.get("era", 0),
                "fenced": bool(topology.get("fenced")),
                "fenced_era": topology.get("fenced_era", 0),
                "broken": topology.get("broken"),
            }
        if not converged(nodes):
            return False
        leader = self._leader_node()
        if leader is None or leader.db is None:
            return False
        target = leader.db.wal_lsn
        for node in self.nodes.values():
            follower = node.follower
            if node is leader or follower is None:
                continue
            if getattr(node.service, "promoted", False):
                continue
            if follower.applied_lsn < target:
                return False
        return True

    def _leader_node(self) -> SimNode | None:
        """The unfenced primary at the newest era (lowest URL on a tie —
        the same deterministic rule the coordinator converges on)."""
        best = None
        best_key = None
        for node in self.nodes.values():
            service = node.service
            if node.crashed or service is None:
                continue
            topology = service._topology()
            if topology.get("role") != "primary" or topology.get("fenced"):
                continue
            key = (-int(topology.get("era", 0)), node.url)
            if best_key is None or key < best_key:
                best, best_key = node, key
        return best

    def final_state(self) -> tuple[set, tuple]:
        """``(surviving (cid, seq) pairs, era_history)`` from the leader.

        Falls back to the most-advanced node when the cluster never
        converged — the convergence violation is reported separately;
        this still gives the write checks a best-effort timeline.
        """
        leader = self._leader_node()
        if leader is None:
            alive = [n for n in self.nodes.values() if n.db is not None]
            if not alive:
                return set(), ()
            leader = max(alive, key=lambda n: (getattr(n.db, "era", 0), n.db.wal_lsn))
        rows = leader.db.execute("SELECT C, S FROM kv").rows
        state = {(int(c), int(s)) for c, s in rows if int(c) >= 0}
        return state, leader.db.era_history

    def close(self) -> list[str]:
        """Close every database; returns the data dirs for scrubbing."""
        directories = []
        for node in self.nodes.values():
            if node.follower is not None:
                node.follower.close()
            if node.db is not None:
                node.db.close()
                node.db = None
            node.service = None
            directories.append(node.data_dir)
        return directories
