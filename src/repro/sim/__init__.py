"""Deterministic in-process cluster simulation.

The package has two layers:

* **Seams** — :mod:`repro.sim.clock` and :mod:`repro.sim.transport`
  define the ``Clock`` and ``Transport`` abstractions the distributed
  stack (service client, replication follower, failover coordinator,
  server session GC) is written against.  Production code uses the
  system implementations (``SYSTEM_CLOCK``, ``HttpTransport``); they are
  re-exported here and import nothing outside the standard library and
  :mod:`repro.errors`, so depending on them from the service layer does
  not create an import cycle.

* **Harness** — :mod:`repro.sim.cluster`, :mod:`repro.sim.nemesis`,
  :mod:`repro.sim.history` and :mod:`repro.sim.runner` build a whole
  replica set (primary + replicas + coordinator + workload clients) in
  one process on a :class:`~repro.sim.clock.VirtualClock` and a
  :class:`~repro.sim.transport.SimTransport`, drive it through a seeded
  fault schedule, and check the client-visible history.  Import these
  as submodules (``from repro.sim.runner import run_sim``); they pull in
  the service layer and must not be imported from this ``__init__``.
"""

from repro.sim.clock import SYSTEM_CLOCK, Clock, SkewedClock, SystemClock, VirtualClock
from repro.sim.transport import HttpTransport, SimNet, SimTransport, Transport

__all__ = [
    "SYSTEM_CLOCK",
    "Clock",
    "SkewedClock",
    "SystemClock",
    "VirtualClock",
    "HttpTransport",
    "SimNet",
    "SimTransport",
    "Transport",
]
