"""The Transport seam: how a request/response dict reaches a node.

:class:`ServiceClient` delegates the wire hop to a :class:`Transport`.
A transport's job is narrow: deliver ``(method, path, payload)`` to the
node behind ``base_url`` and return the decoded response body (which may
itself carry a structured ``{"error": ...}`` — mapping that back to an
exception stays in the client).  It raises
:class:`~repro.errors.ServiceUnavailable` only for *transport-level*
failures: the node is unreachable, the connection dropped, or the server
answered 503 with no body.

:class:`HttpTransport` is the production implementation (the ``urllib``
code that used to live inline in the client).  :class:`SimTransport`
delivers the same dicts in-memory to in-process
:class:`~repro.service.server.QueryService` handlers, under a seeded
fault model (:class:`SimNet`) that can delay, drop, duplicate and
partition per-link — the whole replica set becomes testable in one
process at virtual-time speed.
"""

from __future__ import annotations

import http.client
import json
import random
import urllib.error
import urllib.request

from repro.errors import ServiceError, ServiceUnavailable
from repro.sim.clock import VirtualClock


class Transport:
    """Delivers one request to one node; see module docstring."""

    def request(
        self,
        base_url: str,
        method: str,
        path: str,
        payload: dict | None,
        timeout: float,
    ) -> dict:
        raise NotImplementedError


class HttpTransport(Transport):
    """JSON-over-HTTP via ``urllib``; stateless, shared by default."""

    def request(
        self,
        base_url: str,
        method: str,
        path: str,
        payload: dict | None,
        timeout: float,
    ) -> dict:
        url = base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if method == "POST":
            data = json.dumps(payload or {}).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                body = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as http_error:
            # Must precede the OSError branch: HTTPError ⊂ URLError ⊂
            # OSError, and an HTTP error response *is* a server answer.
            try:
                body = json.loads(http_error.read().decode("utf-8"))
            except ValueError:
                body = None
            if isinstance(body, dict) and "error" in body:
                return body
            if http_error.code == 503:
                # No structured error but the status says it all: the
                # server is up yet not serving (draining /health probe).
                raise ServiceUnavailable("server is not ready (HTTP 503)") from None
            raise ServiceError(f"server returned HTTP {http_error.code}") from None
        except (OSError, http.client.HTTPException) as transport_error:
            # Connection refused/reset, DNS failure, socket timeout,
            # malformed response: the server is unreachable right now.
            raise ServiceUnavailable(
                f"server unreachable: {type(transport_error).__name__}: "
                f"{transport_error}"
            ) from transport_error
        return body


#: Shared default — clients do ``transport or HTTP_TRANSPORT``.
HTTP_TRANSPORT = HttpTransport()


class SimNet:
    """In-memory network: node registry + seeded per-link fault model.

    Nodes register a handler (``QueryService.handle``) under their URL.
    Each delivery draws latency from the net's RNG, then applies faults
    in order: a crashed destination or a partitioned link fails fast
    with ``ServiceUnavailable``; a dropped *request* is lost before the
    handler runs; a duplicated request runs the handler twice (the
    caller sees the first response — the ghost models an at-least-once
    network); a dropped *response* loses the ack **after** the handler
    ran, the classic "did my write land?" ambiguity.  Reordering falls
    out of per-request random latency: two requests issued back-to-back
    can complete in either order depending on the draws.

    All randomness comes from the seeded ``rng`` and all time from the
    :class:`~repro.sim.clock.VirtualClock`, so a given seed always
    yields the identical sequence of deliveries.
    """

    def __init__(
        self,
        clock: VirtualClock,
        rng: random.Random,
        trace=None,
        latency: tuple[float, float] = (0.001, 0.005),
    ):
        self._clock = clock
        self._rng = rng
        self._trace = trace if trace is not None else []
        self.latency = latency
        self.drop_request_prob = 0.0
        self.drop_response_prob = 0.0
        self.duplicate_prob = 0.0
        self._handlers: dict[str, object] = {}
        self._down: set[str] = set()
        self._cut: set[frozenset[str]] = set()
        self._isolated: set[str] = set()
        self.counters = {
            "delivered": 0,
            "dropped_request": 0,
            "dropped_response": 0,
            "duplicated": 0,
            "partitioned": 0,
            "unreachable": 0,
        }

    # -- topology ------------------------------------------------------------

    def register(self, url: str, handler) -> None:
        self._handlers[url.rstrip("/")] = handler

    def set_down(self, url: str, down: bool = True) -> None:
        """Mark a node crashed: every delivery to it fails fast."""
        if down:
            self._down.add(url)
        else:
            self._down.discard(url)

    def partition(self, a: str, b: str) -> None:
        self._cut.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._cut.discard(frozenset((a, b)))

    def isolate(self, url: str) -> None:
        """Cut every link touching ``url``."""
        self._isolated.add(url)

    def unisolate(self, url: str) -> None:
        self._isolated.discard(url)

    def heal_all(self) -> None:
        self._cut.clear()
        self._isolated.clear()

    def severed(self, origin: str, dest: str) -> bool:
        if origin in self._isolated or dest in self._isolated:
            return True
        return frozenset((origin, dest)) in self._cut

    def transport(self, origin: str) -> "SimTransport":
        """A Transport whose requests originate from ``origin`` —
        identity matters because partitions are per-link."""
        return SimTransport(self, origin)

    # -- delivery ------------------------------------------------------------

    def deliver(
        self,
        origin: str,
        base_url: str,
        method: str,
        path: str,
        payload: dict | None,
        timeout: float,
    ) -> dict:
        dest = base_url.rstrip("/")
        latency = self._rng.uniform(*self.latency)
        handler = self._handlers.get(dest)
        if handler is None or dest in self._down:
            self.counters["unreachable"] += 1
            self._note("unreachable", origin, dest, path)
            raise ServiceUnavailable(f"sim: {dest} is down")
        if self.severed(origin, dest):
            # The caller burns its timeout discovering the cut.
            self.counters["partitioned"] += 1
            self._note("partitioned", origin, dest, path)
            self._clock.sleep(min(timeout, 0.05))
            raise ServiceUnavailable(f"sim: link {origin} -> {dest} is partitioned")
        if self.drop_request_prob and self._rng.random() < self.drop_request_prob:
            self.counters["dropped_request"] += 1
            self._note("drop_request", origin, dest, path)
            self._clock.sleep(min(timeout, 0.05))
            raise ServiceUnavailable(f"sim: request {origin} -> {dest} lost")
        self._clock.sleep(latency)
        if self.duplicate_prob and self._rng.random() < self.duplicate_prob:
            self.counters["duplicated"] += 1
            self._note("duplicate", origin, dest, path)
            status, body = handler(method, path, dict(payload) if payload else {})
            self._ghost(handler, method, path, payload)
            # fall through with the first response
        else:
            status, body = handler(method, path, dict(payload) if payload else {})
        if self.drop_response_prob and self._rng.random() < self.drop_response_prob:
            self.counters["dropped_response"] += 1
            self._note("drop_response", origin, dest, path)
            raise ServiceUnavailable(f"sim: response {dest} -> {origin} lost")
        self._clock.sleep(latency)
        self.counters["delivered"] += 1
        return body

    def _ghost(self, handler, method: str, path: str, payload: dict | None) -> None:
        """Redeliver a duplicated request; its response is discarded."""
        try:
            handler(method, path, dict(payload) if payload else {})
        except Exception:
            pass  # a ghost's failure is invisible by definition

    def _note(self, kind: str, origin: str, dest: str, path: str) -> None:
        self._trace.append(f"{self._clock.now():.4f} net {kind} {origin} {dest} {path}")


class SimTransport(Transport):
    """A :class:`Transport` bound to one origin on a :class:`SimNet`."""

    def __init__(self, net: SimNet, origin: str):
        self.net = net
        self.origin = origin

    def request(
        self,
        base_url: str,
        method: str,
        path: str,
        payload: dict | None,
        timeout: float,
    ) -> dict:
        return self.net.deliver(self.origin, base_url, method, path, payload, timeout)
