"""Entry points: run one seed, sweep many, shrink a failing schedule.

:func:`run_sim` is the whole experiment for one seed: build a cluster in
a fresh scratch directory, generate the nemesis schedule from the seed,
run the workload on virtual time, heal everything, wait for convergence,
check the history, scrub every node's durable directory, and return a
:class:`SimResult`.  The same seed always produces the identical event
trace and history — :func:`check_determinism` asserts exactly that by
running a seed twice and comparing both — so a sweep only needs to
report ``seed N failed`` for the failure to be debuggable offline.
"""

from __future__ import annotations

import json
import random
import shutil
import tempfile
from dataclasses import dataclass, field

from repro.sim.clock import VirtualClock
from repro.sim.cluster import SimCluster
from repro.sim.history import HistoryChecker, HistoryRecorder
from repro.sim.nemesis import NemesisEvent, generate_schedule, install_schedule, shrink
from repro.sim.transport import SimNet


@dataclass
class SimResult:
    seed: int
    schedule: list
    violations: list
    settled: bool
    trace: list = field(repr=False)
    recorder: HistoryRecorder = field(repr=False)
    net_counters: dict = field(default_factory=dict)
    ops: int = 0
    acked_writes: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def history_digest(self) -> str:
        """A stable serialization of the client-visible history — two
        runs of the same seed must produce byte-identical digests."""
        return json.dumps(
            {"ops": self.recorder.ops, "statuses": self.recorder.statuses},
            sort_keys=True,
        )


def run_sim(
    seed: int,
    data_dir: str | None = None,
    nodes: int = 3,
    clients: int = 3,
    duration: float = 8.0,
    settle_timeout: float = 30.0,
    break_rule: str | None = None,
    events_override: list | None = None,
) -> SimResult:
    """One full simulated run; see the module docstring.

    ``events_override`` replaces the seed-derived schedule (the shrink
    loop and directed regression tests use it); everything else still
    derives from ``seed``, so overridden runs stay deterministic too.
    """
    scratch = data_dir or tempfile.mkdtemp(prefix="repro-sim-")
    owns_scratch = data_dir is None
    try:
        master = random.Random(seed)
        clock = VirtualClock()
        trace: list[str] = []
        net = SimNet(clock, random.Random(master.randrange(2**63)), trace=trace)
        recorder = HistoryRecorder()
        cluster = SimCluster(
            clock,
            net,
            random.Random(master.randrange(2**63)),
            recorder,
            scratch,
            trace,
            node_count=nodes,
            client_count=clients,
            break_rule=break_rule,
        )
        cluster.build()
        # Background packet chaos arms only after the fault-free build
        # (the initial bootstrap is deployment, not a fault we inject).
        net.drop_request_prob = 0.02
        net.drop_response_prob = 0.02
        net.duplicate_prob = 0.02
        schedule = (
            list(events_override)
            if events_override is not None
            else generate_schedule(
                random.Random(master.randrange(2**63)),
                list(cluster.nodes),
                duration,
            )
        )
        install_schedule(cluster, schedule)
        cluster.start_coordinator()
        cluster.start_workload(duration)
        clock.run_until(duration)
        # Settle: no new faults, everything healed, workload stopped.
        net.heal_all()
        cluster.pause_coordinator(False)
        settled = False
        while clock.now() < duration + settle_timeout:
            clock.run_until(clock.now() + 0.25)
            if cluster.settled():
                settled = True
                break
        cluster.sample()  # the checker's final convergence sample
        final_state, final_history = cluster.final_state()
        checker = HistoryChecker(recorder, final_state, final_history, clock.now())
        violations = checker.check()
        directories = cluster.close()
        violations.extend(_scrub_all(directories, scratch))
        acked = sum(
            1
            for op in recorder.ops
            if op["kind"] == "write" and op.get("status") == "ok"
        )
        return SimResult(
            seed=seed,
            schedule=schedule,
            violations=violations,
            settled=settled,
            trace=trace,
            recorder=recorder,
            net_counters=dict(net.counters),
            ops=len(recorder.ops),
            acked_writes=acked,
        )
    finally:
        if owns_scratch:
            shutil.rmtree(scratch, ignore_errors=True)


def _scrub_all(directories: list, scratch: str) -> list:
    """Post-run invariant: every node's durable directory passes the
    offline integrity walk (``repro scrub``), run in-process."""
    import argparse
    import io

    from repro.cli import cmd_scrub

    violations = []
    for directory in directories:
        out = io.StringIO()
        status = cmd_scrub(argparse.Namespace(data_dir=directory), out)
        if status != 0:
            name = directory[len(scratch) :].strip("/")
            report = out.getvalue().strip().replace("\n", "; ")
            violations.append(f"scrub anomalies on {name}: {report}")
    return violations


def check_determinism(seed: int, **kwargs) -> tuple[SimResult, list]:
    """Run ``seed`` twice; returns the first result plus a list of
    divergences (empty = deterministic)."""
    first = run_sim(seed, **kwargs)
    second = run_sim(seed, **kwargs)
    problems = []
    if first.trace != second.trace:
        for index, (a, b) in enumerate(zip(first.trace, second.trace)):
            if a != b:
                problems.append(f"trace diverges at line {index}: {a!r} != {b!r}")
                break
        if len(first.trace) != len(second.trace):
            problems.append(
                f"trace length {len(first.trace)} != {len(second.trace)}"
            )
    if first.history_digest() != second.history_digest():
        problems.append("history digests differ")
    return first, problems


def sweep(
    seeds: int, start: int = 0, on_result=None, **kwargs
) -> tuple[int, list[SimResult]]:
    """Run ``seeds`` consecutive seeds; returns (passed, failures)."""
    passed = 0
    failures = []
    for seed in range(start, start + seeds):
        result = run_sim(seed, **kwargs)
        if result.ok:
            passed += 1
        else:
            failures.append(result)
        if on_result is not None:
            on_result(result)
    return passed, failures


def shrink_schedule(result: SimResult, **kwargs) -> list[NemesisEvent]:
    """Minimize a failing run's nemesis schedule by re-running with
    event subsets; returns the smallest schedule that still fails."""

    def still_fails(events: list) -> bool:
        probe = run_sim(result.seed, events_override=events, **kwargs)
        return bool(probe.violations)

    return shrink(result.schedule, still_fails)
