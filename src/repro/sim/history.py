"""Client-visible history: recording and invariant checking.

The recorder logs every operation a workload client performs against the
simulated replica set — ``invoke``, then ``ok`` (with the era and
causality LSNs the response carried) or ``fail`` (with the error code) —
plus periodic cluster *status* samples and the nemesis *fault*
intervals.  The checker replays that history against the cluster's
final state and asserts the replication protocol's contract:

1. **No lost acked writes.**  An acknowledged write ``(era E, commit_lsn
   L)`` survives on the final timeline unless a later reign's boundary
   cut it off: with ``B`` the ``era_lsn`` of the first era newer than
   ``E`` in the final history, the write is *doomed-by-boundary* iff
   ``L >= B`` (its log position belongs to a deposed primary's divergent
   suffix).  A must-survive write missing from the final state is a
   violation; a doomed write is only *allowed* to be lost if it was
   acknowledged inside an unsettled window (a nemesis fault was active,
   or the cluster had not yet re-converged) — the protocol's documented
   lost-by-design case.  A doomed write acked while the cluster was
   settled is a violation: a settled primary must fence before acking
   writes a newer reign will disown.
2. **Era monotonicity.**  Per client, the eras stamped on its write
   acks never decrease (a client that saw era N can never get a write
   acknowledged by an older reign — the era it ships would fence that
   node).  Per node, the effective era ``max(era, fenced_era)`` never
   decreases between consecutive status samples without a restart.
3. **Read-your-writes.**  Every read reflects all of the client's own
   previously acknowledged writes except doomed ones (whose loss rule 1
   already polices).
4. **Monotonic reads.**  Per client, the surviving writes seen by one
   read are a subset of what the next read sees.

The checker is deliberately end-state-based (observable behavior, not
implementation traces): it never inspects node internals beyond the
topology fields the nodes themselves publish.
"""

from __future__ import annotations

#: How far *before* a fault's start an acknowledged write may still be
#: lost to it.  Replication is asynchronous: a write acked an instant
#: before the primary is cut off has not replicated yet, and no fencing
#: protocol can retroactively protect it.  The bound is the replication
#: pipeline's worst case in the simulator (follower poll interval plus
#: two network hops), with headroom.
REPLICATION_LAG_GRACE = 0.25


class HistoryRecorder:
    """Append-only log of operations, status samples, fault intervals."""

    def __init__(self):
        self.ops: list[dict] = []
        self.statuses: list[dict] = []
        self.faults: list[dict] = []
        self._next_id = 0

    def invoke(self, client: str, kind: str, time: float, **fields) -> dict:
        op = {"id": self._next_id, "client": client, "kind": kind, "invoked": round(time, 4)}
        op.update(fields)
        self._next_id += 1
        self.ops.append(op)
        return op

    def ok(self, op: dict, time: float, **fields) -> None:
        op["status"] = "ok"
        op["done"] = round(time, 4)
        op.update(fields)

    def fail(self, op: dict, time: float, code: str) -> None:
        op["status"] = "fail"
        op["done"] = round(time, 4)
        op["error"] = code

    def status(self, time: float, nodes: dict) -> None:
        self.statuses.append({"time": round(time, 4), "nodes": nodes})

    def fault(self, kind: str, start: float, end: float, target: str = "") -> None:
        self.faults.append(
            {"kind": kind, "target": target, "start": round(start, 4), "end": round(end, 4)}
        )


def converged(nodes: dict) -> bool:
    """One unfenced primary, everyone alive at the newest era, nothing broken.

    A *fenced* node counts as converged at its fencing era: the fence is
    the protocol's way of parking a deposed primary, and demanding its
    durable era catch up would call a correctly-fenced corpse divergent.
    """
    alive = {name: node for name, node in nodes.items() if node.get("alive")}
    if not alive:
        return False
    primaries = [
        node
        for node in alive.values()
        if node.get("role") == "primary" and not node.get("fenced")
    ]
    if len(primaries) != 1:
        return False
    max_era = max(_effective_era(node) for node in alive.values())
    if _effective_era(primaries[0]) != max_era:
        return False
    for node in alive.values():
        if node.get("broken"):
            return False
        if not node.get("fenced") and _effective_era(node) != max_era:
            return False
    return True


def _effective_era(node: dict) -> int:
    return max(int(node.get("era", 0)), int(node.get("fenced_era", 0)))


class HistoryChecker:
    """Checks one run's history against the final cluster state."""

    def __init__(
        self,
        recorder: HistoryRecorder,
        final_state: set,
        final_era_history: tuple,
        run_end: float,
    ):
        self.recorder = recorder
        #: ``(client_id, seq)`` pairs present on the final primary.
        self.final_state = final_state
        self.final_era_history = tuple(tuple(entry) for entry in final_era_history)
        self.run_end = run_end
        self.violations: list[str] = []
        self._windows = self._unsettled_windows()

    # -- the unsettled windows ----------------------------------------------

    def _unsettled_windows(self) -> list[tuple[float, float]]:
        """Merged intervals in which acked-write loss is tolerated.

        Each window opens :data:`REPLICATION_LAG_GRACE` before a nemesis
        fault starts (asynchronously-replicated acks from just before
        the cut are legitimately at risk) and closes at the first status
        sample *after the fault ended* that shows the cluster converged
        (or at the end of the run if it never does).
        """
        windows = []
        for fault in self.recorder.faults:
            close = self.run_end
            for status in self.recorder.statuses:
                if status["time"] > fault["end"] and converged(status["nodes"]):
                    close = status["time"]
                    break
            windows.append((fault["start"] - REPLICATION_LAG_GRACE, close))
        windows.sort()
        merged: list[tuple[float, float]] = []
        for start, end in windows:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged

    def _in_window(self, time: float) -> bool:
        return any(start <= time <= end for start, end in self._windows)

    # -- doomed-by-boundary classification -----------------------------------

    def _next_boundary(self, era: int) -> int | None:
        boundaries = [lsn for e, lsn in self.final_era_history if e > era]
        return min(boundaries) if boundaries else None

    def _must_survive(self, op: dict) -> bool:
        boundary = self._next_boundary(int(op.get("era") or 0))
        lsn = op.get("commit_lsn")
        if lsn is None:
            return True  # rule 1 flags the missing stamp separately
        return boundary is None or lsn < boundary

    # -- the checks ----------------------------------------------------------

    def check(self) -> list[str]:
        self._check_writes()
        self._check_client_era_monotonic()
        self._check_node_era_monotonic()
        self._check_reads()
        self._check_final_convergence()
        return self.violations

    def _acked_writes(self, client: str | None = None) -> list[dict]:
        return [
            op
            for op in self.recorder.ops
            if op["kind"] == "write"
            and op.get("status") == "ok"
            and (client is None or op["client"] == client)
        ]

    def _check_writes(self) -> None:
        for op in self._acked_writes():
            key = (op["cid"], op["seq"])
            if op.get("commit_lsn") is None:
                self.violations.append(
                    f"write op {op['id']} ({op['client']} seq {op['seq']}) was acked"
                    f" without a commit_lsn"
                )
                continue
            present = key in self.final_state
            if present:
                continue
            if self._must_survive(op):
                self.violations.append(
                    f"lost acked write: {op['client']} seq {op['seq']}"
                    f" (era {op.get('era') or 0}, commit_lsn {op['commit_lsn']})"
                    f" is on the surviving timeline but absent from the final state"
                )
            elif not self._in_window(op["done"]):
                self.violations.append(
                    f"unsafe ack: {op['client']} seq {op['seq']} was acknowledged at"
                    f" t={op['done']} with the cluster settled, yet a newer reign's"
                    f" boundary disowned it (era {op.get('era') or 0},"
                    f" commit_lsn {op['commit_lsn']})"
                )

    def _check_client_era_monotonic(self) -> None:
        clients = {op["client"] for op in self.recorder.ops}
        for client in sorted(clients):
            high = 0
            for op in self._acked_writes(client):
                era = int(op.get("era") or 0)
                if era < high:
                    self.violations.append(
                        f"era regression for {client}: write seq {op['seq']} acked"
                        f" at era {era} after an ack at era {high}"
                    )
                high = max(high, era)

    def _check_node_era_monotonic(self) -> None:
        previous: dict[str, dict] = {}
        for status in self.recorder.statuses:
            for name, node in status["nodes"].items():
                if not node.get("alive"):
                    previous.pop(name, None)  # a restart may legally reset
                    continue
                before = previous.get(name)
                if (
                    before is not None
                    and not node.get("restarted")
                    and _effective_era(node) < _effective_era(before)
                ):
                    self.violations.append(
                        f"era regression on {name}: {_effective_era(before)} ->"
                        f" {_effective_era(node)} at t={status['time']}"
                    )
                previous[name] = node

    def _check_reads(self) -> None:
        clients = {op["client"] for op in self.recorder.ops}
        for client in sorted(clients):
            acked: dict[int, dict] = {}
            last_seen: set[int] = set()
            for op in [o for o in self.recorder.ops if o["client"] == client]:
                if op["kind"] == "write":
                    if op.get("status") == "ok":
                        acked[op["seq"]] = op
                    continue
                if op.get("status") != "ok":
                    continue
                values = set(op.get("values", ()))
                expected = {
                    seq for seq, write in acked.items() if self._must_survive(write)
                }
                missing = expected - values
                if missing:
                    self.violations.append(
                        f"read-your-writes violation for {client}: read op {op['id']}"
                        f" at t={op['done']} is missing own surviving writes"
                        f" {sorted(missing)}"
                    )
                regressed = (last_seen & expected) - values
                if regressed:
                    self.violations.append(
                        f"monotonic-reads violation for {client}: read op {op['id']}"
                        f" lost previously seen writes {sorted(regressed)}"
                    )
                last_seen = values
        return

    def _check_final_convergence(self) -> None:
        if not self.recorder.statuses:
            self.violations.append("no status samples recorded; cannot assess convergence")
            return
        final = self.recorder.statuses[-1]
        if not converged(final["nodes"]):
            self.violations.append(
                f"cluster failed to converge by t={final['time']}: {final['nodes']}"
            )
