"""The Clock seam: virtual time for deterministic simulation.

Every component of the distributed stack that reads or spends time —
retry backoff in :mod:`repro.service.client`, the circuit breaker in
:mod:`repro.service.resilience`, follower backoff and apply stalls in
:mod:`repro.replication.replica`, the coordinator's health-check cadence
in :mod:`repro.replication.failover`, and session GC in
:mod:`repro.service.server` — takes a :class:`Clock` and defaults to
:data:`SYSTEM_CLOCK`.  Under simulation the same code runs against a
:class:`VirtualClock`: ``sleep`` advances a counter instead of blocking,
and a heap-ordered event scheduler replaces threads, so a multi-minute
fault schedule executes in milliseconds and every run with the same seed
replays the exact same interleaving.
"""

from __future__ import annotations

import heapq
import threading
import time


class Clock:
    """Time source + scheduler interface (see :class:`SystemClock`)."""

    def now(self) -> float:
        """Wall-clock seconds (``time.time`` semantics)."""
        raise NotImplementedError

    def monotonic(self) -> float:
        """Monotonic seconds (``time.monotonic`` semantics)."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError

    def wait(self, event: threading.Event, timeout: float) -> bool:
        """``event.wait(timeout)`` through the clock; True if set."""
        raise NotImplementedError


class SystemClock(Clock):
    """Real time; the default everywhere outside the simulator."""

    def now(self) -> float:
        return time.time()

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def wait(self, event: threading.Event, timeout: float) -> bool:
        return event.wait(timeout)


#: Shared default instance — components do ``clock or SYSTEM_CLOCK``.
SYSTEM_CLOCK = SystemClock()


class _Scheduled:
    """Handle for a scheduled callback; ``cancel()`` is idempotent."""

    __slots__ = ("when", "seq", "callback", "label", "cancelled")

    def __init__(self, when: float, seq: int, callback, label: str):
        self.when = when
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "_Scheduled") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


class VirtualClock(Clock):
    """Discrete-event virtual time.

    The simulator models every actor (a client operation, one follower
    poll, one coordinator health round) as a *synchronous* callback
    scheduled at a virtual instant; there are no real threads, so the
    heap's ``(time, seq)`` order fully determines the interleaving.
    ``sleep`` inside a callback advances virtual time — it models the
    time that operation spends — and ``wait`` on an event consumes the
    timeout and returns the event's current state (with no concurrent
    threads, nothing can set it mid-wait).
    """

    def __init__(self, start: float = 0.0):
        self._now = start
        self._heap: list[_Scheduled] = []
        self._seq = 0

    # -- Clock interface ----------------------------------------------------

    def now(self) -> float:
        return self._now

    def monotonic(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            self._now += seconds

    def wait(self, event: threading.Event, timeout: float) -> bool:
        if event.is_set():
            return True
        self.sleep(timeout)
        return event.is_set()

    # -- scheduler ----------------------------------------------------------

    def call_at(self, when: float, callback, label: str = "") -> _Scheduled:
        """Schedule ``callback()`` at virtual time ``when``."""
        self._seq += 1
        handle = _Scheduled(max(when, self._now), self._seq, callback, label)
        heapq.heappush(self._heap, handle)
        return handle

    def call_later(self, delay: float, callback, label: str = "") -> _Scheduled:
        return self.call_at(self._now + max(delay, 0.0), callback, label)

    def run_until(self, deadline: float) -> None:
        """Run scheduled callbacks in ``(time, seq)`` order up to ``deadline``."""
        while self._heap and self._heap[0].when <= deadline:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            # A callback may have slept past the event's nominal time;
            # never move backwards.
            self._now = max(self._now, handle.when)
            handle.callback()
        self._now = max(self._now, deadline)

    def pending(self) -> int:
        return sum(1 for handle in self._heap if not handle.cancelled)


class SkewedClock(Clock):
    """A per-node offset over a base clock — the clock-skew nemesis.

    Skew shifts what a node *reads* (session timestamps, breaker reset
    windows) without affecting scheduling, which stays on the base
    clock.  ``offset`` is mutable so the nemesis can introduce and heal
    skew mid-run.
    """

    def __init__(self, base: Clock, offset: float = 0.0):
        self._base = base
        self.offset = offset

    def now(self) -> float:
        return self._base.now() + self.offset

    def monotonic(self) -> float:
        return self._base.monotonic() + self.offset

    def sleep(self, seconds: float) -> None:
        self._base.sleep(seconds)

    def wait(self, event: threading.Event, timeout: float) -> bool:
        return self._base.wait(event, timeout)
