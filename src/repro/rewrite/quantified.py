"""Quantified table subqueries via count reduction (TR extension).

The technical report extends the unnesting strategy to table subqueries
(EXISTS / NOT EXISTS / IN / NOT IN, and ``θ ANY/ALL`` from the paper's
outlook).  We reduce every quantified form to a *counting scalar
subquery* over the same block, which the scalar machinery (Eqv. 1–5)
then unnests uniformly:

====================  =====================================================
``EXISTS q``          ``count(q) > 0``
``NOT EXISTS q``      ``count(q) = 0``
``x IN q``            ``count(σ[x = c] q) > 0``
``x NOT IN q``        ``count(σ[x = c ∨ c IS NULL ∨ x IS NULL] q) = 0``
``x θ ANY q``         ``count(σ[x θ c] q) > 0``
``x θ ALL q``         ``count(σ[x θ̄ c ∨ c IS NULL ∨ x IS NULL] q) = 0``
====================  =====================================================

where ``c`` is the subquery's output column and ``θ̄`` negates ``θ``.

Exactness: the TRUE-sets agree with SQL's three-valued semantics in every
case; where SQL yields UNKNOWN the reduction may yield FALSE.  In an NNF
predicate (no NOT above the reduced expression) a selection — plain or
bypass — cannot distinguish the two, so the reduction is sound exactly
there; the rewriter normalises to NNF first.  The count-based violation
encodings for the negated forms build the NULL guards *into* the counted
set, so the notorious NOT IN NULL trap is handled exactly, not
approximately.
"""

from __future__ import annotations

from typing import Callable

from repro.algebra import expr as E
from repro.algebra import ops as L
from repro.algebra.aggregates import STAR, AggSpec
from repro.rewrite.normalize import to_nnf


def reduce_quantified(expression: E.Expr, fresh: Callable[[str], str]) -> E.Expr:
    """Rewrite quantified subquery expressions into count comparisons.

    ``fresh(suffix)`` supplies globally unique attribute names for the
    synthesised aggregate outputs.  Non-reducible nodes (e.g. a subquery
    whose block uses LIMIT) are left untouched — the engine evaluates
    them nested.
    """
    if isinstance(expression, E.Exists):
        plan = _strip_presentation(expression.plan, keep_single_column=False)
        if plan is None:
            return expression
        count = _count_subquery(plan, None, fresh)
        op = "=" if expression.negated else ">"
        return E.Comparison(op, count, E.Literal(0))

    if isinstance(expression, E.InSubquery):
        stripped = _strip_presentation(expression.plan, keep_single_column=True)
        if stripped is None:
            return expression
        plan, column = stripped
        operand = expression.operand
        if expression.negated:
            violation = E.disjunction(
                [
                    E.Comparison("=", operand, E.ColumnRef(column)),
                    E.IsNull(E.ColumnRef(column)),
                    E.IsNull(operand),
                ]
            )
            count = _count_subquery(plan, violation, fresh)
            return E.Comparison("=", count, E.Literal(0))
        match = E.Comparison("=", operand, E.ColumnRef(column))
        count = _count_subquery(plan, match, fresh)
        return E.Comparison(">", count, E.Literal(0))

    if isinstance(expression, E.QuantifiedComparison):
        stripped = _strip_presentation(expression.plan, keep_single_column=True)
        if stripped is None:
            return expression
        plan, column = stripped
        operand = expression.operand
        if expression.quantifier == "any":
            match = E.Comparison(expression.op, operand, E.ColumnRef(column))
            count = _count_subquery(plan, match, fresh)
            return E.Comparison(">", count, E.Literal(0))
        violation = E.disjunction(
            [
                E.Comparison(E.NEGATED_OP[expression.op], operand, E.ColumnRef(column)),
                E.IsNull(E.ColumnRef(column)),
                E.IsNull(operand),
            ]
        )
        count = _count_subquery(plan, violation, fresh)
        return E.Comparison("=", count, E.Literal(0))

    kids = expression.children()
    if not kids:
        return expression
    new_kids = [reduce_quantified(kid, fresh) for kid in kids]
    if all(new is old for new, old in zip(new_kids, kids)):
        return expression
    return expression.replace_children(new_kids)


def _strip_presentation(plan: L.Operator, keep_single_column: bool):
    """Peel Sort/Distinct/Project wrappers that do not affect counting.

    For the single-column forms (IN / quantified) returns
    ``(stripped_plan, column_name)``; for EXISTS just the stripped plan.
    ``None`` signals "do not reduce" (LIMIT present, or no single output
    column where one is required).

    Dropping Distinct is sound: ``count(σ …) > 0`` / ``= 0`` tests
    emptiness, which duplicate elimination never changes.
    """
    node = plan
    column: str | None = None
    while True:
        if isinstance(node, L.Limit):
            return None
        if isinstance(node, (L.Sort, L.Distinct)):
            node = node.child
            continue
        if isinstance(node, L.Project):
            if column is None and len(node.names) == 1:
                column = node.names[0]
            node = node.child
            continue
        break
    if not keep_single_column:
        return node
    if column is None:
        if len(node.schema) == 1:
            column = node.schema.names[0]
        else:
            return None
    return node, column


def _count_subquery(plan: L.Operator, extra: E.Expr | None, fresh: Callable[[str], str]) -> E.ScalarSubquery:
    """Build ``(SELECT COUNT(*) FROM plan WHERE extra)`` as an expression."""
    if isinstance(plan, L.Select):
        predicate, source = plan.predicate, plan.child
    else:
        predicate, source = E.TRUE, plan
    conjuncts = [to_nnf(predicate)]
    if extra is not None:
        conjuncts.append(extra)
    combined = E.conjunction(conjuncts)
    body = source if combined == E.TRUE else L.Select(source, combined)
    aggregate = L.ScalarAggregate(body, [(fresh("cnt"), AggSpec("count", STAR))])
    return E.ScalarSubquery(aggregate)
