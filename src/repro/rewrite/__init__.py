"""The unnesting rewriter — the paper's contribution.

:mod:`repro.rewrite.unnest` implements Equivalences 1–5 as composable
plan builders plus a recursive driver that handles simple, linear, and
tree queries, including the paper's outlook case of *combined*
disjunctive linking and correlation.  :mod:`repro.rewrite.quantified`
extends the machinery to table subqueries (EXISTS/IN/ANY/ALL — the
technical-report extension).  :mod:`repro.rewrite.rank` orders disjuncts
by Slagle's rank, deciding between Equivalence 2 and 3.
"""

from repro.rewrite.unnest import UnnestOptions, unnest
from repro.rewrite.rank import rank_of, order_disjuncts
from repro.rewrite.debypass import contains_bypass, remove_bypass

__all__ = [
    "unnest",
    "UnnestOptions",
    "rank_of",
    "order_disjuncts",
    "remove_bypass",
    "contains_bypass",
]
