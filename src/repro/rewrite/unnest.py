"""Unnesting equivalences and the rewrite driver (paper §3).

The entry point :func:`unnest` rewrites a canonical plan into a bypass
DAG.  Per-selection logic:

* split the predicate into disjuncts (after NNF normalisation and the
  count reduction of quantified subqueries);
* **disjunctive linking** (≥ 2 disjuncts, some containing subqueries):
  order disjuncts by rank and build a bypass-selection chain.  A
  subquery-free disjunct first is Equivalence 2; a subquery disjunct
  first is Equivalence 3 — both fall out of the same chain builder.  The
  positive stream of each stage is emitted; the last disjunct is handled
  conjunctively on the final negative stream.  The union of all streams
  (disjoint by construction) is the result.
* **conjunctive linking** (single disjunct): every subquery conjunct has
  its aggregate value *attached* to the stream as a fresh attribute
  ``g`` and the conjunct rewritten to reference ``g``;
* the attachment itself dispatches on the inner block's correlation:
  - conjunctive equality correlation → Γ + ⟕ with ``g:f(∅)``
    (**Equivalence 1**);
  - disjunctive correlation, decomposable aggregate, equality
    correlation, simple ``p`` → bypass selection on the inner relation,
    partial aggregates recombined by a map (**Equivalence 4**);
  - anything else (non-equality or mixed correlation, ``p`` containing a
    subquery, non-decomposable aggregates such as COUNT(DISTINCT ·)) →
    numbering ν + bypass join ⋈± + binary grouping Γ
    (**Equivalence 5**), recursing into ``σp`` on the negative stream —
    which is how linear queries (Q4) unnest all the way down.

Because the disjunct chain composes with the attachment dispatch, the
driver also covers the paper's outlook case (1): queries whose linking
*and* correlation predicates both occur disjunctively.

Tree queries (Q3) unnest by consuming one subquery disjunct per chain
stage; linear queries (Q4) by the Eqv.-5 recursion.  Everything applies
equally under bag semantics (§3.7): grouping keys are unique before the
outer join, ν numbers the outer tuples before the bypass join, and each
bypass operator partitions its input, so the final disjoint union neither
loses nor duplicates tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra import expr as E
from repro.algebra import ops as L
from repro.algebra.aggregates import AggSpec
from repro.errors import NotUnnestableError
from repro.rewrite import normalize as N
from repro.rewrite.quantified import reduce_quantified
from repro.rewrite.rank import Estimator, order_disjuncts


@dataclass(frozen=True)
class UnnestOptions:
    """Strategy knobs for the rewriter.

    ``disjunct_order``
        ``"rank"`` (default) orders the bypass chain by Slagle's rank;
        ``"simple_first"`` forces Equivalence 2, ``"subquery_first"``
        forces Equivalence 3, ``"as_written"`` keeps the SQL order.
    ``enable_eqv4``
        When false, disjunctive correlation always uses Equivalence 5 —
        the ablation switch for the Eqv. 4 vs. 5 benchmark.
    ``enable_quantified``
        Reduce EXISTS/IN/ANY/ALL subqueries to counting subqueries so
        they unnest too (technical-report extension).
    ``strict``
        Raise :class:`~repro.errors.NotUnnestableError` when a correlated
        scalar subquery survives the rewrite (tests use this; the default
        pipeline silently falls back to nested-loop evaluation).
    """

    disjunct_order: str = "rank"
    enable_eqv4: bool = True
    enable_quantified: bool = True
    strict: bool = False
    estimator: Estimator = field(default_factory=Estimator)


def unnest(plan: L.Operator, options: UnnestOptions | None = None) -> L.Operator:
    """Rewrite ``plan`` (a canonical translation) into a bypass DAG."""
    rewriter = _Rewriter(options or UnnestOptions())
    result = rewriter.rewrite_plan(plan)
    if rewriter.options.strict:
        _assert_unnested(result)
    return result


class _Rewriter:
    def __init__(self, options: UnnestOptions):
        self.options = options
        self._uid = 0
        self._memo: dict[int, L.Operator] = {}

    def fresh(self, suffix: str) -> str:
        self._uid += 1
        return f"u{self._uid}.{suffix}"

    # -- plan traversal ------------------------------------------------------

    def rewrite_plan(self, node: L.Operator) -> L.Operator:
        cached = self._memo.get(id(node))
        if cached is not None:
            return cached
        if isinstance(node, L.Select):
            result = self._apply_predicate(self.rewrite_plan(node.child), node.predicate)
        elif isinstance(node, L.Map) and node.expression.contains_subquery():
            result = self._apply_map(node)
        else:
            children = [self.rewrite_plan(child) for child in node.children()]
            if all(new is old for new, old in zip(children, node.children())):
                result = node
            else:
                result = node.replace_children(children)
        self._memo[id(node)] = result
        return result

    def _apply_map(self, node: L.Map) -> L.Operator:
        """Unnest subqueries in a map subscript (select-clause nesting).

        Attachments preserve the input cardinality (one output row per
        input row for ⟕-after-Γ and for the binary grouping), so a map
        over the extended stream followed by a projection back to the
        original schema is exact.
        """
        child = self.rewrite_plan(node.child)
        # Note: no NNF / count reduction here.  A map subscript is a
        # *value* expression — conflating UNKNOWN with FALSE would change
        # the produced value, so only the exact scalar attachment applies;
        # quantified expressions stay nested (their blocks still unnest
        # internally via _attach_all's fallback).
        new_child, new_expression = self._attach_all(child, node.expression)
        mapped = L.Map(new_child, node.name, new_expression)
        if new_child is child:
            return mapped
        return L.Project(mapped, node.schema.names)

    # -- per-selection driver ----------------------------------------------------

    def _apply_predicate(self, child: L.Operator, predicate: E.Expr) -> L.Operator:
        """Build the (possibly bypass) plan for ``σ predicate (child)``.

        The result always has ``child``'s schema.
        """
        predicate = N.to_nnf(predicate)
        if not predicate.contains_subquery():
            return L.Select(child, predicate)
        if self.options.enable_quantified:
            predicate = reduce_quantified(predicate, self.fresh)

        disjuncts = E.disjuncts(predicate)
        if len(disjuncts) == 1:
            return self._conjunctive(child, predicate)
        if not any(d.contains_subquery() for d in disjuncts):
            return L.Select(child, predicate)

        ordered = self._order(disjuncts)
        streams: list[L.Operator] = []
        current = child
        for disjunct in ordered[:-1]:
            positive, negative = self._bypass_stage(current, disjunct)
            streams.append(positive)
            current = negative
        streams.append(self._conjunctive(current, ordered[-1]))
        return L.union_all(streams)

    def _order(self, disjuncts: list[E.Expr]) -> list[E.Expr]:
        mode = self.options.disjunct_order
        if mode == "as_written":
            return list(disjuncts)
        if mode == "simple_first":
            return sorted(disjuncts, key=lambda d: d.contains_subquery())
        if mode == "subquery_first":
            return sorted(disjuncts, key=lambda d: not d.contains_subquery())
        return order_disjuncts(disjuncts, self.options.estimator)

    def _bypass_stage(self, current: L.Operator, disjunct: E.Expr):
        """One stage of the bypass chain; returns (emitted, negative)."""
        if not disjunct.contains_subquery():
            bypass = L.BypassSelect(current, disjunct)
            return bypass.positive, bypass.negative
        names = current.schema.names
        expanded, rewritten = self._attach_all(current, disjunct)
        bypass = L.BypassSelect(expanded, rewritten)
        if expanded is current:
            return bypass.positive, bypass.negative
        return (
            L.Project(bypass.positive, names),
            L.Project(bypass.negative, names),
        )

    def _conjunctive(self, input_plan: L.Operator, predicate: E.Expr) -> L.Operator:
        """Handle ``σ predicate`` with conjunctive (or absent) linking."""
        conjs = E.conjuncts(predicate)
        plain = [c for c in conjs if not c.contains_subquery()]
        nested = [c for c in conjs if c.contains_subquery()]
        current = input_plan
        if plain:
            current = L.Select(current, E.conjunction(plain))
        rewritten: list[E.Expr] = []
        for conjunct in nested:
            current, new_conjunct = self._attach_all(current, conjunct)
            rewritten.append(new_conjunct)
        if rewritten:
            current = L.Select(current, E.conjunction(rewritten))
        if current.schema != input_plan.schema:
            current = L.Project(current, input_plan.schema.names)
        return current

    # -- aggregate attachment -----------------------------------------------------

    def _attach_all(self, input_plan: L.Operator, expression: E.Expr):
        """Attach every attachable subquery in ``expression``.

        Returns ``(new_input, new_expression)``.  Subqueries that cannot
        be attached are rewritten internally (their own nesting still
        unnests) and stay as nested expressions.
        """
        done: set[int] = set()
        while True:
            target = None
            for sub in N.find_subquery_exprs(expression):
                if id(sub) not in done:
                    target = sub
                    break
            if target is None:
                return input_plan, expression
            replacement = None
            if isinstance(target, E.ScalarSubquery):
                attached = self._attach_scalar(input_plan, target.plan)
                if attached is not None:
                    input_plan, g_name = attached
                    replacement = E.ColumnRef(g_name)
            if replacement is None:
                # Leave nested, but unnest inside the block.
                inner = self.rewrite_plan(target.plan)
                if inner is not target.plan:
                    replacement = self._with_plan(target, inner)
                    done.add(id(replacement))
                    expression = N.replace_expr_node(expression, target, replacement)
                else:
                    done.add(id(target))
                continue
            expression = N.replace_expr_node(expression, target, replacement)

    @staticmethod
    def _with_plan(sub: E.SubqueryExpr, plan: L.Operator) -> E.SubqueryExpr:
        from dataclasses import replace

        return replace(sub, plan=plan)

    def _attach_scalar(self, input_plan: L.Operator, plan: L.Operator):
        """Attach one scalar-aggregate block; returns (new_input, g) or None."""
        free = plan.free_attrs()
        if not free:
            return None  # type A: evaluate once, keep as (cached) expression
        input_names = set(input_plan.schema.names)
        if free - input_names:
            return None  # correlation reaches past this stream: leave nested
        shape = N.peel_scalar_aggregate(plan)
        if shape is None:
            return None  # not a single-aggregate block (type-J scalar)
        if shape.source.free_attrs():
            return None  # correlation hidden below the block's selection
        source_names = frozenset(shape.source.schema.names)
        split = N.split_conjuncts(N.to_nnf(shape.predicate), source_names)
        source = N.apply_local_filter(self.rewrite_plan(shape.source), split.local)
        if not split.correlating:
            return None  # defensive: free attrs but no correlating conjunct
        analysis = N.analyse_correlation(split.correlating, source_names)

        if analysis.eq_pairs and analysis.or_conjunct is None and not analysis.general:
            return self._attach_eqv1(input_plan, source, analysis.eq_pairs, shape.spec)

        if analysis.or_conjunct is not None and not analysis.general and not analysis.eq_pairs:
            return self._attach_disjunctive(
                input_plan, source, analysis.or_conjunct, shape.spec, source_names
            )

        # Mixed or non-equality conjunctive correlation: the general route
        # with the whole correlating conjunction as the join predicate.
        q_corr = E.conjunction(split.correlating)
        return self._attach_eqv5(input_plan, source, q_corr, None, shape.spec)

    # -- Equivalence 1 ---------------------------------------------------------

    def _attach_eqv1(self, input_plan, source, pairs, spec: AggSpec):
        """Γ on the correlation keys + ⟕ with ``g:f(∅)`` defaults."""
        g_name = self.fresh("g")
        keys: list[str] = []
        for pair in pairs:
            if pair.inner_column not in keys:
                keys.append(pair.inner_column)
        grouped = L.GroupBy(source, keys, [(g_name, spec)])
        join_predicate = E.conjunction(
            [E.Comparison("=", pair.outer, E.ColumnRef(pair.inner_column)) for pair in pairs]
        )
        joined = L.LeftOuterJoin(
            input_plan, grouped, join_predicate, defaults={g_name: spec.empty_result()}
        )
        return joined, g_name

    # -- Equivalences 4 and 5 -----------------------------------------------------

    def _attach_disjunctive(self, input_plan, source, or_conjunct, spec, source_names):
        """Dispatch disjunctive correlation to Eqv. 4 or Eqv. 5."""
        ds = E.disjuncts(or_conjunct)
        corr_ds = [d for d in ds if N.outer_refs(d, source_names)]
        p_ds = [d for d in ds if not N.outer_refs(d, source_names)]

        if p_ds and self._eqv4_applicable(spec, corr_ds, p_ds, source_names):
            pairs, locals_ = self._split_corr_disjunct(corr_ds[0], source_names)
            return self._attach_eqv4(
                input_plan, source, pairs, locals_, E.disjunction(p_ds), spec
            )

        q_corr = E.disjunction(corr_ds)
        p = E.disjunction(p_ds) if p_ds else None
        return self._attach_eqv5(input_plan, source, q_corr, p, spec)

    def _eqv4_applicable(self, spec, corr_ds, p_ds, source_names) -> bool:
        """Eqv. 4 preconditions: decomposable f, equality correlation,
        ``p`` simple (no subquery — footnote 1 and the text of §3.3)."""
        if not self.options.enable_eqv4:
            return False
        if not spec.is_decomposable:
            return False
        if len(corr_ds) != 1:
            return False
        if any(p.contains_subquery() for p in p_ds):
            return False
        split = self._split_corr_disjunct(corr_ds[0], source_names)
        return split is not None and bool(split[0])

    @staticmethod
    def _split_corr_disjunct(disjunct: E.Expr, source_names):
        """Split one correlation disjunct into eq-pairs + local conjuncts.

        Returns ``None`` when the disjunct has a non-equality correlating
        part (which forces Eqv. 5).
        """
        pairs = []
        locals_: list[E.Expr] = []
        for conjunct in E.conjuncts(disjunct):
            pair = N.match_equality_correlation(conjunct, source_names)
            if pair is not None:
                pairs.append(pair)
                continue
            if N.outer_refs(conjunct, source_names):
                return None
            locals_.append(conjunct)
        return pairs, locals_

    def _attach_eqv4(self, input_plan, source, pairs, corr_locals, p, spec: AggSpec):
        """Bypass σ± on the inner relation; recombine partials with χ.

        Positive stream of ``σp±(S)``: pre-aggregated once into the
        scalar ``g2 = fI(σp+(S))``.  Negative stream: filtered by the
        correlation disjunct's local part, grouped on the correlation
        keys into ``g1``.  After the outer join (default ``g1:fI(∅)``),
        ``χ g := fO(g1, g2)`` produces the total.
        """
        partial = spec.with_partial()
        bypass = L.BypassSelect(source, p)

        negative = N.apply_local_filter(bypass.negative, corr_locals)
        g1_name = self.fresh("g1")
        keys: list[str] = []
        for pair in pairs:
            if pair.inner_column not in keys:
                keys.append(pair.inner_column)
        grouped = L.GroupBy(negative, keys, [(g1_name, partial)])
        join_predicate = E.conjunction(
            [E.Comparison("=", pair.outer, E.ColumnRef(pair.inner_column)) for pair in pairs]
        )
        joined = L.LeftOuterJoin(
            input_plan, grouped, join_predicate, defaults={g1_name: partial.empty_result()}
        )

        g2_plan = L.ScalarAggregate(bypass.positive, [(self.fresh("g2"), partial)])
        g_name = self.fresh("g")
        combine = E.AggCombine(
            spec.resolved_name(),
            (E.ColumnRef(g1_name), E.ScalarSubquery(g2_plan)),
        )
        mapped = L.Map(joined, g_name, combine)
        return mapped, g_name

    def _attach_eqv5(self, input_plan, source, q_corr, p, spec: AggSpec):
        """ν + bypass join + binary grouping — the general route.

        ``p`` (the correlation-free disjuncts) is applied to the bypass
        join's negative stream *through the full driver*, so a nested
        linking predicate inside ``p`` — a linear query — unnests
        recursively, exactly as in Fig. 6.
        """
        t_name = self.fresh("t")
        t2_name = self.fresh("t2")
        g_name = self.fresh("g")
        numbered = L.Numbering(input_plan, t_name)

        if p is None:
            union = L.Join(numbered, source, q_corr)
        else:
            bypass = L.BypassJoin(numbered, source, q_corr)
            matched = bypass.positive
            checked = self._apply_predicate(bypass.negative, p)
            union = L.UnionAll(matched, checked)

        renamed = L.Rename(union, {t_name: t2_name})
        grouped = L.BinaryGroupBy(
            numbered,
            renamed,
            g_name,
            left_key=t_name,
            right_key=t2_name,
            spec=spec,
            op="=",
            star_names=source.schema.names,
        )
        return grouped, g_name


def _assert_unnested(plan: L.Operator) -> None:
    """Strict mode: no correlated subquery expression may survive."""
    seen: set[int] = set()

    def visit(node: L.Operator) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        for expression in node.exprs():
            for sub in N.find_subquery_exprs(expression):
                if isinstance(sub, E.AggCombine):
                    continue
                if sub.plan.free_attrs():
                    raise NotUnnestableError(
                        f"correlated subquery survived the rewrite in "
                        f"{node.label()}"
                    )
                visit(sub.plan)
        for child in node.children():
            visit(child)

    visit(plan)
