"""Structural analysis of canonical subquery plans.

The unnesting equivalences match a specific canonical shape:

    Π[g] ( ScalarAgg[g: f(arg)] ( σ[pred] ( source ) ) )

These helpers peel that shape apart and classify the inner predicate's
conjuncts and disjuncts relative to the block boundary:

* a conjunct is **local** if it references only attributes produced by
  ``source`` — it can be pushed into the source;
* a conjunct is **correlating** if it references attributes of the outer
  block (free attributes of the plan);
* an *equality correlation* ``outer_expr = inner_column`` is the shape
  unary grouping can exploit (Equivalences 1–4); anything else forces the
  general route (Equivalence 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra import expr as E
from repro.algebra import ops as L
from repro.algebra.aggregates import AggSpec


@dataclass
class ScalarShape:
    """The peeled canonical form of a scalar-aggregate block."""

    spec: AggSpec
    predicate: E.Expr  # TRUE when the block has no WHERE
    source: L.Operator  # the block's FROM (with local filters kept inside)


def peel_scalar_aggregate(plan: L.Operator) -> ScalarShape | None:
    """Match ``[Project] → ScalarAggregate[single agg] → [Select] → source``.

    Returns ``None`` when the plan is not a single-aggregate block (e.g.
    a non-aggregate scalar subquery) — callers then fall back to nested
    evaluation.
    """
    node = plan
    while isinstance(node, L.Project) and len(node.names) == 1:
        node = node.child
    if not isinstance(node, L.ScalarAggregate) or len(node.aggregates) != 1:
        return None
    (_, spec) = node.aggregates[0]
    child = node.child
    # The join optimizer may interpose a pure column permutation between
    # the aggregate and the block's selection; aggregation is insensitive
    # to column order, so peel it.
    while isinstance(child, L.Project) and set(child.names) == set(
        child.child.schema.names
    ):
        child = child.child
    if isinstance(child, L.Select):
        return ScalarShape(spec, child.predicate, child.child)
    return ScalarShape(spec, E.TRUE, child)


@dataclass
class PredicateSplit:
    """Inner-predicate conjuncts classified against the block boundary."""

    local: list[E.Expr]  # no outer references → push into the source
    correlating: list[E.Expr]  # reference outer attributes


def split_conjuncts(predicate: E.Expr, source_schema_names: frozenset[str]) -> PredicateSplit:
    """Classify top-level conjuncts by whether they reach outside the block."""
    local: list[E.Expr] = []
    correlating: list[E.Expr] = []
    for conjunct in E.conjuncts(predicate):
        if conjunct == E.TRUE:
            continue
        if outer_refs(conjunct, source_schema_names):
            correlating.append(conjunct)
        else:
            local.append(conjunct)
    return PredicateSplit(local, correlating)


def outer_refs(expression: E.Expr, source_schema_names: frozenset[str]) -> frozenset[str]:
    """Attribute references that escape the block (correlation)."""
    return expression.free_attrs() - source_schema_names


@dataclass
class EqualityCorrelation:
    """One ``outer_expr = inner_column`` correlation pair."""

    outer: E.Expr  # references only outer attributes
    inner_column: str  # attribute of the block's source


def match_equality_correlation(
    conjunct: E.Expr, source_schema_names: frozenset[str]
) -> EqualityCorrelation | None:
    """Match a conjunct of the form ``outer = inner_col`` (either order).

    The inner side must be a plain column (it becomes the grouping key);
    the outer side may be any expression over outer attributes only.
    """
    if not isinstance(conjunct, E.Comparison) or conjunct.op != "=":
        return None
    for candidate in (conjunct, conjunct.mirrored()):
        right = candidate.right
        if not isinstance(right, E.ColumnRef) or right.name not in source_schema_names:
            continue
        left = candidate.left
        if left.contains_subquery():
            continue
        if not left.free_attrs():
            continue  # constant = column is a local predicate, not correlation
        if left.free_attrs() & source_schema_names:
            continue  # the outer side must not touch inner attributes
        return EqualityCorrelation(outer=left, inner_column=right.name)
    return None


@dataclass
class CorrelationAnalysis:
    """Decomposition of the correlating conjuncts of a block.

    ``eq_pairs``/``eq_locals`` describe a purely conjunctive equality
    correlation (Eqv. 1 territory); ``or_conjunct`` is set when exactly
    one conjunct is a disjunction containing correlation (Eqv. 4/5
    territory); ``general`` collects anything else.
    """

    eq_pairs: list[EqualityCorrelation]
    or_conjunct: E.Expr | None
    general: list[E.Expr]


def analyse_correlation(
    correlating: list[E.Expr], source_schema_names: frozenset[str]
) -> CorrelationAnalysis:
    eq_pairs: list[EqualityCorrelation] = []
    or_conjunct: E.Expr | None = None
    general: list[E.Expr] = []
    for conjunct in correlating:
        pair = match_equality_correlation(conjunct, source_schema_names)
        if pair is not None:
            eq_pairs.append(pair)
            continue
        if isinstance(conjunct, E.Or) and or_conjunct is None:
            or_conjunct = conjunct
            continue
        general.append(conjunct)
    return CorrelationAnalysis(eq_pairs, or_conjunct, general)


def apply_local_filter(source: L.Operator, local: list[E.Expr]) -> L.Operator:
    """Push block-local conjuncts into the source."""
    if not local:
        return source
    return L.Select(source, E.conjunction(local))


def replace_expr_node(root: E.Expr, target: E.Expr, replacement: E.Expr) -> E.Expr:
    """Replace one node (by identity) in an expression tree."""
    if root is target:
        return replacement
    kids = root.children()
    if not kids:
        return root
    new_kids = [replace_expr_node(kid, target, replacement) for kid in kids]
    if all(new is old for new, old in zip(new_kids, kids)):
        return root
    return root.replace_children(new_kids)


def find_subquery_exprs(expression: E.Expr) -> list[E.SubqueryExpr]:
    """All subquery expressions in ``expression``, outermost first."""
    return [node for node in expression.walk() if isinstance(node, E.SubqueryExpr)]


def to_nnf(expression: E.Expr) -> E.Expr:
    """Push NOT inward (negation normal form), 3VL-preserving.

    De Morgan over AND/OR, comparison-operator flips, and negation-flag
    flips on LIKE / IS NULL / IN / EXISTS / quantified comparisons are all
    exact under SQL's three-valued logic (UNKNOWN maps to UNKNOWN on both
    sides).  NOT survives only around constructs with no 3VL-exact dual
    (e.g. CASE).

    NNF matters to the rewriter: inside an NNF predicate, conflating
    FALSE with UNKNOWN can never turn a non-qualifying row into a
    qualifying one, which is what licenses the count-based reduction of
    quantified subqueries.
    """
    if isinstance(expression, E.Not):
        return negate(expression.operand)
    kids = expression.children()
    if not kids:
        return expression
    new_kids = [to_nnf(kid) for kid in kids]
    if all(new is old for new, old in zip(new_kids, kids)):
        return expression
    return expression.replace_children(new_kids)


def negate(expression: E.Expr) -> E.Expr:
    """Return the NNF of ``NOT expression`` (3VL-exact)."""
    if isinstance(expression, E.Not):
        return to_nnf(expression.operand)
    if isinstance(expression, E.And):
        return E.disjunction([negate(item) for item in expression.items])
    if isinstance(expression, E.Or):
        return E.conjunction([negate(item) for item in expression.items])
    if isinstance(expression, E.Comparison):
        return E.Comparison(E.NEGATED_OP[expression.op], expression.left, expression.right)
    if isinstance(expression, E.Literal):
        if expression.value is None:
            return expression
        return E.Literal(not expression.value)
    if isinstance(expression, E.Like):
        return E.Like(expression.operand, expression.pattern, not expression.negated)
    if isinstance(expression, E.IsNull):
        return E.IsNull(expression.operand, not expression.negated)
    if isinstance(expression, E.InList):
        return E.InList(expression.operand, expression.items, not expression.negated)
    if isinstance(expression, E.Exists):
        return E.Exists(expression.plan, not expression.negated)
    if isinstance(expression, E.InSubquery):
        return E.InSubquery(expression.operand, expression.plan, not expression.negated)
    if isinstance(expression, E.QuantifiedComparison):
        flipped = "all" if expression.quantifier == "any" else "any"
        return E.QuantifiedComparison(
            expression.operand, E.NEGATED_OP[expression.op], flipped, expression.plan
        )
    return E.Not(to_nnf(expression))
