"""Bypass-operator elimination (paper §6.1).

    "Although most runtime systems and optimizers do not incorporate
     bypass plans, it is possible to transfer bypass plans into plans
     without bypass operators.  This can, for example, be done by
     tagging every tuple whether it belongs to the positive or negative
     stream."

:func:`remove_bypass` implements exactly that: each bypass selection
becomes a map computing a two-valued tag (``CASE WHEN p THEN TRUE ELSE
FALSE END`` — folding UNKNOWN into the negative stream, like σ± does),
and each stream tap becomes a selection on the tag plus a projection
back to the original schema.  A bypass join is tagged over the cross
product.  The tagged node is shared by both stream replacements, so the
result is still a DAG — but one made only of standard operators, which
is what an engine without native bypass support needs.

The ablation benchmark ``benchmarks/test_ablations.py`` measures what
the tag-based encoding costs compared to native bypass operators.
"""

from __future__ import annotations

from repro.algebra import expr as E
from repro.algebra import ops as L


def remove_bypass(plan: L.Operator) -> L.Operator:
    """Rewrite a bypass DAG into an equivalent plan without σ±/⋈±."""
    return _Debypasser().rewrite(plan)


class _Debypasser:
    def __init__(self):
        self._memo: dict[int, L.Operator] = {}
        #: id(bypass node) -> (tagged plan, tag attribute name)
        self._tagged: dict[int, tuple[L.Operator, str]] = {}
        self._counter = 0

    def _fresh_tag(self) -> str:
        self._counter += 1
        return f"bp{self._counter}.tag"

    def rewrite(self, node: L.Operator) -> L.Operator:
        cached = self._memo.get(id(node))
        if cached is not None:
            return cached
        if isinstance(node, L.StreamTap):
            result = self._rewrite_tap(node)
        else:
            children = [self.rewrite(child) for child in node.children()]
            if all(new is old for new, old in zip(children, node.children())):
                result = node
            else:
                result = node.replace_children(children)
            result = self._rewrite_subplans(result)
        self._memo[id(node)] = result
        return result

    def _tagged_plan(self, bypass: L.Operator) -> tuple[L.Operator, str]:
        """Build (once) the tagged replacement for a bypass operator."""
        cached = self._tagged.get(id(bypass))
        if cached is not None:
            return cached
        tag = self._fresh_tag()
        predicate = bypass.predicate
        two_valued = E.Case(((predicate, E.Literal(True)),), E.Literal(False))
        if isinstance(bypass, L.BypassSelect):
            source = self.rewrite(bypass.child)
        else:  # BypassJoin: tag the cross product
            source = L.CrossProduct(
                self.rewrite(bypass.left), self.rewrite(bypass.right)
            )
        tagged = L.Map(source, tag, two_valued)
        self._tagged[id(bypass)] = (tagged, tag)
        return tagged, tag

    def _rewrite_tap(self, tap: L.StreamTap) -> L.Operator:
        bypass = tap.child
        tagged, tag = self._tagged_plan(bypass)
        wanted = E.Literal(True) if tap.positive_stream else E.Literal(False)
        selected = L.Select(tagged, E.Comparison("=", E.ColumnRef(tag), wanted))
        return L.Project(selected, tap.schema.names)

    def _rewrite_subplans(self, node: L.Operator) -> L.Operator:
        """Recurse into subquery plans inside the node's expressions."""
        if not any(True for _ in node.subquery_plans()):
            return node

        def rewrite_expr(expression: E.Expr) -> E.Expr:
            if isinstance(expression, E.SubqueryExpr):
                from dataclasses import replace

                new_plan = self.rewrite(expression.plan)
                if new_plan is expression.plan:
                    return expression
                return replace(expression, plan=new_plan)
            kids = expression.children()
            if not kids:
                return expression
            new_kids = [rewrite_expr(kid) for kid in kids]
            if all(new is old for new, old in zip(new_kids, kids)):
                return expression
            return expression.replace_children(new_kids)

        if isinstance(node, L.Select):
            predicate = rewrite_expr(node.predicate)
            if predicate is not node.predicate:
                return L.Select(node.child, predicate)
        elif isinstance(node, L.Map):
            expression = rewrite_expr(node.expression)
            if expression is not node.expression:
                return L.Map(node.child, node.name, expression)
        elif isinstance(node, L.BypassSelect):
            predicate = rewrite_expr(node.predicate)
            if predicate is not node.predicate:
                return L.BypassSelect(node.child, predicate)
        return node


def contains_bypass(plan: L.Operator) -> bool:
    """True if any bypass operator remains anywhere in the plan DAG."""
    seen: set[int] = set()

    def visit(node: L.Operator) -> bool:
        if id(node) in seen:
            return False
        seen.add(id(node))
        if isinstance(node, (L.BypassSelect, L.BypassJoin)):
            return True
        for sub in node.subquery_plans():
            if visit(sub):
                return True
        return any(visit(child) for child in node.children())

    return visit(plan)
