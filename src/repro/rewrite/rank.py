"""Predicate ranks and disjunct ordering (paper §3.1, Remark).

For a predicate ``p`` with selectivity ``s`` and per-tuple evaluation
cost ``c``, Slagle's rank is ``rank(p) = (s − 1) / c``; predicates are
evaluated in ascending rank order.  In a bypass chain over a disjunction
this decides between Equivalence 2 (cheap simple predicate first, the
subquery evaluated only on the negative stream) and Equivalence 3 (the
unnested subquery first, the expensive simple predicate bypassed).

Estimates come from an :class:`Estimator`; the default one uses the
classic System-R constants and charges subqueries a large cost, which
yields the paper's default strategy (Eqv. 2).  The cost-based optimizer
injects a catalog-driven estimator instead.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.algebra import expr as E


class Estimator:
    """Default selectivity/cost heuristics (no statistics needed)."""

    #: Relative per-tuple cost of evaluating a nested subquery.
    SUBQUERY_COST = 1000.0
    LIKE_COST = 5.0
    SIMPLE_COST = 1.0

    def selectivity(self, predicate: E.Expr) -> float:
        if isinstance(predicate, E.Comparison):
            if predicate.op == "=":
                return 0.1
            if predicate.op == "<>":
                return 0.9
            return 1.0 / 3.0
        if isinstance(predicate, E.And):
            result = 1.0
            for item in predicate.items:
                result *= self.selectivity(item)
            return result
        if isinstance(predicate, E.Or):
            result = 1.0
            for item in predicate.items:
                result *= 1.0 - self.selectivity(item)
            return 1.0 - result
        if isinstance(predicate, E.Not):
            return 1.0 - self.selectivity(predicate.operand)
        if isinstance(predicate, (E.Like, E.InList)):
            return 0.25
        if isinstance(predicate, (E.Exists, E.InSubquery, E.QuantifiedComparison)):
            return 0.5
        return 0.5

    def cost(self, predicate: E.Expr) -> float:
        if predicate.contains_subquery():
            return self.SUBQUERY_COST
        if isinstance(predicate, E.Like):
            return self.LIKE_COST
        total = self.SIMPLE_COST
        for child in predicate.children():
            total += self.cost(child) - self.SIMPLE_COST if not isinstance(child, E.Literal) else 0.0
        return max(total, self.SIMPLE_COST)


def rank_of(predicate: E.Expr, estimator: Estimator | None = None) -> float:
    """Slagle's rank ``(s − 1) / c`` — lower means evaluate earlier."""
    estimator = estimator or Estimator()
    selectivity = estimator.selectivity(predicate)
    cost = estimator.cost(predicate)
    return (selectivity - 1.0) / cost


def order_disjuncts(
    disjuncts: Sequence[E.Expr],
    estimator: Estimator | None = None,
    key: Callable[[E.Expr], float] | None = None,
) -> list[E.Expr]:
    """Order disjuncts for a bypass chain by ascending rank (stable).

    With the default estimator, subquery-free disjuncts precede nested
    ones (Equivalence 2); an estimator that makes the simple predicate
    very expensive flips the order (Equivalence 3).
    """
    ranker = key or (lambda d: rank_of(d, estimator))
    return sorted(disjuncts, key=ranker)
