"""Client-side resilience: retry with backoff, and a circuit breaker.

The server already degrades gracefully — admission control rejects with
``SERVER_OVERLOADED`` (HTTP 429) instead of queueing unboundedly, and a
draining server answers ``SERVICE_UNAVAILABLE`` (503) while it finishes
in-flight work.  Those signals only help if clients *react* to them;
this module supplies the two standard reactions:

* :class:`RetryPolicy` — capped exponential backoff with jitter.  Jitter
  matters even at this scale: a server drain releases every waiting
  client at once, and synchronized retries would re-create the thundering
  herd the admission queue exists to absorb.
* :class:`CircuitBreaker` — after ``failure_threshold`` consecutive
  transport failures the circuit *opens* and calls fail fast with
  :class:`~repro.errors.CircuitOpen` (no socket attempt at all); after
  ``reset_timeout`` seconds one trial request is allowed through
  (*half-open*), and its outcome closes or re-opens the circuit.

Both are deliberately deterministic under test: the policy takes an
injectable RNG, the breaker an injectable clock, and
:class:`~repro.service.client.ServiceClient` takes an injectable sleep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CircuitOpen
from repro.sim.clock import SYSTEM_CLOCK

#: Circuit states (exposed via :attr:`CircuitBreaker.state`).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff: ``base * multiplier^k``, jittered.

    ``jitter`` is the fraction of each delay that is randomized away
    (0.5 means a delay lands uniformly in [50%, 100%] of nominal).
    ``max_attempts`` counts the *total* number of tries, including the
    first; ``max_attempts=1`` disables retries entirely.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def delay(self, attempt: int, rng=None) -> float:
        """Seconds to sleep after failed attempt number ``attempt`` (1-based)."""
        nominal = min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )
        if self.jitter and rng is not None:
            nominal *= 1.0 - self.jitter * rng.random()
        return nominal

    def should_retry(self, attempt: int) -> bool:
        return attempt < self.max_attempts


class CircuitBreaker:
    """Consecutive-failure circuit breaker (closed → open → half-open).

    Not thread-safe by design — a breaker belongs to one client, and the
    client is a per-thread object.  Transport failures (the server is
    unreachable) trip it; structured server errors do not, because a
    server that answers — even with an error — is a server worth talking
    to.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 5.0,
        clock=SYSTEM_CLOCK.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._failures = 0
        self._opened_at: float | None = None
        self._half_open = False

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return CLOSED
        if self._half_open or self._due_for_trial():
            return HALF_OPEN
        return OPEN

    def _due_for_trial(self) -> bool:
        return (
            self._opened_at is not None
            and self._clock() - self._opened_at >= self.reset_timeout
        )

    def allow(self) -> None:
        """Gate one call; raises :class:`CircuitOpen` while the circuit rests."""
        if self._opened_at is None:
            return
        if self._half_open:
            # A trial is already in flight on this client; fail fast.
            raise CircuitOpen(
                "circuit breaker is half-open with a trial request in flight"
            )
        if not self._due_for_trial():
            remaining = self.reset_timeout - (self._clock() - self._opened_at)
            raise CircuitOpen(
                f"circuit breaker is open; retry in {max(remaining, 0.0):.2f}s"
            )
        self._half_open = True  # admit exactly one trial request

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._half_open = False

    def record_failure(self) -> None:
        if self._half_open:
            # The trial failed: re-open and restart the rest timer.
            self._half_open = False
            self._opened_at = self._clock()
            return
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._opened_at = self._clock()

    def snapshot(self) -> dict:
        return {"state": self.state, "consecutive_failures": self._failures}
