"""A normalized, bounded, invalidating plan cache.

Every query pays parse → classify → unnest-rewrite → cost-based planning
before its first row is produced; for the paper's query templates that
derivation dwarfs execution at small-to-mid cardinalities.  The cache
memoises :class:`~repro.optimizer.planner.PlannedQuery` objects keyed on
the **canonicalized AST** — the parser already case-folds identifiers and
discards whitespace/comments, so two spellings of one query share an
entry, and a parameterized template (``A1 = ?``) shares one entry across
all bindings — together with the strategy, the execution engine, and a
caller-supplied token for anything else the plan depends on (views).

Entries are LRU-evicted beyond ``capacity`` and invalidated lazily on
lookup:

* **DDL** — a dependency table was dropped or replaced (object identity
  changed);
* **statistics drift** — the table's :attr:`~repro.storage.table.Table.
  version` moved *and* its row count drifted past the re-cost threshold
  (``max(RECOST_MIN_ROWS, RECOST_FRACTION × planned-time rows)``), so a
  plan picked when a table was tiny is re-costed after a bulk load while
  single-row DML keeps the entry warm;
* **explicit** — :meth:`PlanCache.invalidate_table` / :meth:`clear`
  (wired to ``Database.analyze`` and view DDL).

Hit/miss/invalidation/eviction counters are exposed via :meth:`info`;
the server's ``/metrics`` republishes them.  All operations are
thread-safe; a cached plan itself is immutable after planning and shared
freely across threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.algebra import ops as L
from repro.optimizer.planner import PlannedQuery, Strategy, plan_query
from repro.sql.parser import parse
from repro.storage.catalog import Catalog

#: Absolute row-count drift below which a plan is never re-costed.
RECOST_MIN_ROWS = 16

#: Relative drift (fraction of planned-time row count) that triggers
#: re-planning; mirrors the "ANALYZE threshold" intuition of mainstream
#: systems (re-optimise after ~20–25% churn).
RECOST_FRACTION = 0.25


@dataclass(frozen=True)
class CacheInfo:
    """A snapshot of cache effectiveness counters."""

    hits: int
    misses: int
    invalidations: int
    evictions: int
    size: int
    capacity: int
    #: Cumulative count of quarantine events (plans reported failing at
    #: runtime by the self-healing layer).
    quarantined: int = 0
    #: Keys currently blocked from re-caching.
    quarantined_keys: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "quarantined_keys": self.quarantined_keys,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class _Dependency:
    """What an entry assumed about one base table at planning time."""

    table_id: int
    version: int
    row_count: int


@dataclass
class _Entry:
    planned: PlannedQuery
    deps: dict[str, _Dependency]


def plan_table_names(plan: L.Operator) -> set[str]:
    """All base tables a plan scans, including nested subquery plans."""
    names: set[str] = set()
    stack = [plan]
    seen: set[int] = set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, L.Scan):
            names.add(node.table_name.lower())
        stack.extend(node.children())
        stack.extend(node.subquery_plans())
    return names


class PlanCache:
    """LRU cache of planned queries with lazy staleness validation."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        self._evictions = 0
        self._quarantine_events = 0
        #: Keys whose cached plans failed at runtime; blocked from
        #: re-caching until DDL/analyze re-admits them (see quarantine).
        self._quarantined: set[tuple] = set()

    # -- the main entry point ----------------------------------------------

    def get_or_plan(
        self,
        sql: str,
        catalog: Catalog,
        strategy: "str | Strategy" = "auto",
        engine: str = "row",
        views: dict | None = None,
        extra_token: object = None,
        statement=None,
    ) -> PlannedQuery:
        """Return a cached plan for ``sql`` or plan-and-insert it.

        The statement is parsed exactly once per call; the resulting AST
        both normalises the key and feeds the planner on a miss.  Callers
        holding the parsed tree already (prepared statements) pass it as
        ``statement`` and skip even the parse.  Callers with non-default
        :class:`~repro.rewrite.UnnestOptions` must plan directly — those
        knobs are not part of the key.
        """
        if statement is None:
            statement = parse(sql)
        key = self._key(statement, strategy, engine, extra_token)

        with self._lock:
            quarantined = key in self._quarantined
            entry = self._entries.get(key)
            if entry is not None:
                if self._fresh(entry, catalog):
                    self._entries.move_to_end(key)
                    self._hits += 1
                    return entry.planned
                del self._entries[key]
                self._invalidations += 1
            self._misses += 1

        # Plan outside the lock: planning is the expensive step, and two
        # concurrent misses on one key are safe (last insert wins).
        planned = plan_query(sql, catalog, strategy, None, views, statement=statement)
        if quarantined:
            # A plan for this key failed at runtime; keep planning fresh
            # per execution but never re-publish it to other callers.
            return planned
        entry = _Entry(planned, self._capture_deps(planned, catalog))
        with self._lock:
            if key in self._quarantined:  # raced with a quarantine report
                return planned
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
        return planned

    @staticmethod
    def _key(statement, strategy: "str | Strategy", engine: str, extra_token) -> tuple:
        strategy_name = strategy if isinstance(strategy, str) else strategy.name
        return (statement, strategy_name.lower(), engine, extra_token)

    # -- quarantine ---------------------------------------------------------

    def quarantine(
        self,
        sql: str,
        strategy: "str | Strategy" = "auto",
        engine: str = "row",
        extra_token: object = None,
        statement=None,
    ) -> bool:
        """Report that the cached plan for this key failed at runtime.

        The entry is evicted and the key is blocked from re-caching, so a
        poisoned plan cannot keep serving hits while the self-healing
        layer degrades around it.  Quarantined keys are re-admitted by
        DDL/analyze (:meth:`invalidate_table` / :meth:`clear`) — the
        events that change what the plan would be.  Returns True if a
        live entry was evicted.
        """
        if statement is None:
            statement = parse(sql)
        key = self._key(statement, strategy, engine, extra_token)
        with self._lock:
            evicted = self._entries.pop(key, None) is not None
            self._quarantined.add(key)
            self._quarantine_events += 1
            return evicted

    # -- invalidation -------------------------------------------------------

    def invalidate_table(self, name: str) -> int:
        """Drop every entry depending on ``name``; returns the count.

        Also re-admits all quarantined keys: invalidation means the
        world the failing plan was built for no longer exists.
        """
        key_name = name.lower()
        with self._lock:
            stale = [
                key
                for key, entry in self._entries.items()
                if key_name in entry.deps
            ]
            for key in stale:
                del self._entries[key]
            self._invalidations += len(stale)
            self._quarantined.clear()
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._invalidations += len(self._entries)
            self._entries.clear()
            self._quarantined.clear()

    # -- introspection ------------------------------------------------------

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                invalidations=self._invalidations,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
                quarantined=self._quarantine_events,
                quarantined_keys=len(self._quarantined),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- internals ----------------------------------------------------------

    def _capture_deps(
        self, planned: PlannedQuery, catalog: Catalog
    ) -> dict[str, _Dependency]:
        deps: dict[str, _Dependency] = {}
        for name in plan_table_names(planned.logical):
            if name in catalog:
                table = catalog.table(name)
                deps[name] = _Dependency(id(table), table.version, len(table))
        return deps

    def _fresh(self, entry: _Entry, catalog: Catalog) -> bool:
        for name, dep in entry.deps.items():
            if name not in catalog:
                return False
            table = catalog.table(name)
            if id(table) != dep.table_id:
                return False  # DDL: dropped and re-created
            if table.version != dep.version and self._drifted(
                dep.row_count, len(table)
            ):
                return False
        return True

    @staticmethod
    def _drifted(planned_rows: int, current_rows: int) -> bool:
        threshold = max(RECOST_MIN_ROWS, RECOST_FRACTION * planned_rows)
        return abs(current_rows - planned_rows) > threshold
