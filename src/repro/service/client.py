"""A small stdlib client for the repro SQL server.

:class:`ServiceClient` speaks the JSON protocol of
:mod:`repro.service.server` over ``urllib``; structured error bodies are
re-raised as the matching :mod:`repro.errors` exception class, so client
code handles server-side failures exactly like embedded-library ones::

    from repro.service.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8080")
    result = client.query("SELECT A1 FROM r WHERE A4 > ?", params=[1500])
    print(result.columns, result.rows)

    with client.session() as session:
        stmt = session.prepare("SELECT A1 FROM r WHERE A4 > :lo")
        for lo in (100, 1000, 1500):
            print(lo, stmt.execute({"lo": lo}).rows)
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import (
    AdmissionRejected,
    BadRequestError,
    BudgetExceeded,
    NotPrimary,
    ParameterError,
    QueryCancelled,
    ReadOnlyReplica,
    ReplicaLagging,
    ReproError,
    ServiceUnavailable,
    SessionError,
)
from repro.service.resilience import CircuitBreaker, RetryPolicy
from repro.sim.clock import SYSTEM_CLOCK, Clock
from repro.sim.transport import HTTP_TRANSPORT, Transport

#: Error codes the client maps back to concrete exception classes;
#: anything else becomes a plain :class:`ServiceError` with that code.
_EXCEPTION_BY_CODE = {
    "SERVER_OVERLOADED": AdmissionRejected,
    "BAD_REQUEST": BadRequestError,
    "UNKNOWN_SESSION": SessionError,
    "PARAMETER_ERROR": ParameterError,
    "QUERY_CANCELLED": QueryCancelled,
    "SERVICE_UNAVAILABLE": ServiceUnavailable,
    "READ_ONLY_REPLICA": ReadOnlyReplica,
}


def _raise_for(error: dict) -> None:
    code = error.get("code", "SERVICE_ERROR")
    message = error.get("message", "unknown server error")
    if code == "QUERY_TIMEOUT":
        raise BudgetExceeded(message=message)
    if code == "REPLICA_LAGGING":
        # Reconstruct with the LSNs the replica reported so routing can
        # update its freshness estimate for that endpoint.
        raise ReplicaLagging(
            int(error.get("min_lsn", 0)),
            int(error.get("applied_lsn", 0)),
            message=message,
        )
    if code == "NOT_PRIMARY":
        # Reconstruct with the era and leader hint so the replica-set
        # client can fail the write over without a topology probe.
        leader_url = error.get("leader_url")
        raise NotPrimary(
            int(error.get("era", 0)),
            leader_url if isinstance(leader_url, str) else None,
            message=message,
        )
    exc_class = _EXCEPTION_BY_CODE.get(code)
    if exc_class is not None:
        raise exc_class(message)
    exc = ReproError(message)
    exc.code = code  # preserve the server's code on the generic fallback
    raise exc


@dataclass
class QueryResult:
    """One query's response: column names, row tuples, server timing.

    ``commit_lsn`` is set on responses from a durable primary — the WAL
    LSN after the statement, i.e. the causality token to hand a replica
    as ``min_lsn``.  ``applied_lsn`` is set on responses from a replica:
    how far it had replicated when it answered.
    """

    columns: list[str]
    rows: list[tuple]
    row_count: int
    truncated: bool
    elapsed: float
    commit_lsn: int | None = None
    applied_lsn: int | None = None
    #: The answering node's fencing era (None before any failover).
    era: int | None = None

    def __len__(self) -> int:
        return len(self.rows)


class ServiceClient:
    """Blocking JSON-over-HTTP client; one instance per base URL.

    Requests that fail *retryably* — the server is unreachable
    (``SERVICE_UNAVAILABLE``, including a drain/restart window), sheds
    load (``SERVER_OVERLOADED``, HTTP 429), or cancelled the query while
    draining — are retried under ``retry_policy`` with exponential
    backoff and jitter.  A :class:`~repro.service.resilience.
    CircuitBreaker` fails fast once the server has been unreachable for
    several consecutive transport attempts.  Pass
    ``retry_policy=RetryPolicy(max_attempts=1)`` for callers that must
    see every failure (e.g. DML, where a blind retry is not idempotent).

    ``sleep``/``rng``/``clock``/``transport`` exist for deterministic
    tests and the simulator; leave them alone in production code.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        sleep=None,
        rng: random.Random | None = None,
        clock: Clock | None = None,
        transport: Transport | None = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.http_timeout = timeout
        self.retry_policy = retry_policy or RetryPolicy()
        self._clock = clock or SYSTEM_CLOCK
        self.transport = transport or HTTP_TRANSPORT
        self.breaker = breaker or CircuitBreaker(clock=self._clock.monotonic)
        self._sleep = sleep if sleep is not None else self._clock.sleep
        self._rng = rng or random.Random()

    # -- transport ----------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        budget: float | None = None,
    ) -> dict:
        """One logical request = up to ``max_attempts`` transport attempts.

        ``budget`` is the caller's remaining time budget in seconds.
        Each attempt ships what is left as the ``budget`` request field
        (the server clamps its per-query timeout and read-gate wait to
        it), the transport timeout is clamped to it, and retries stop
        the moment it runs out — so stacked retry loops (routing over
        this client over the server) no longer compound.
        """
        deadline = None if budget is None else self._clock.monotonic() + budget
        attempt = 0
        while True:
            attempt += 1
            request_payload = payload
            timeout = self.http_timeout
            if deadline is not None:
                remaining = deadline - self._clock.monotonic()
                if remaining <= 0:
                    raise BudgetExceeded(message="request budget exhausted before attempt")
                request_payload = dict(payload or {})
                request_payload["budget"] = remaining
                timeout = min(timeout, max(remaining, 0.001))
            self.breaker.allow()
            try:
                body = self._request_once(method, path, request_payload, timeout)
            except ServiceUnavailable:
                self.breaker.record_failure()
                if not self._may_retry(attempt, deadline):
                    raise
                self._sleep(self._retry_delay(attempt, deadline))
                continue
            except ReproError as error:
                # The server answered — the transport works.
                self.breaker.record_success()
                if not getattr(error, "retryable", False):
                    raise
                if not self._may_retry(attempt, deadline):
                    raise
                self._sleep(self._retry_delay(attempt, deadline))
                continue
            self.breaker.record_success()
            return body

    def _may_retry(self, attempt: int, deadline: float | None) -> bool:
        if not self.retry_policy.should_retry(attempt):
            return False
        return deadline is None or self._clock.monotonic() < deadline

    def _retry_delay(self, attempt: int, deadline: float | None) -> float:
        delay = self.retry_policy.delay(attempt, self._rng)
        if deadline is not None:
            delay = min(delay, max(deadline - self._clock.monotonic(), 0.0))
        return delay

    def _request_once(
        self,
        method: str,
        path: str,
        payload: dict | None,
        timeout: float | None = None,
    ) -> dict:
        body = self.transport.request(
            self.base_url,
            method,
            path,
            payload,
            self.http_timeout if timeout is None else timeout,
        )
        if isinstance(body, dict) and "error" in body:
            _raise_for(body["error"])
        return body

    # -- one-shot queries ---------------------------------------------------

    def query(
        self,
        sql: str,
        params=None,
        strategy: str = "auto",
        timeout: float | None = None,
        engine: str = "row",
        min_lsn: int | None = None,
        lsn_wait: float | None = None,
        era: int | None = None,
        budget: float | None = None,
    ) -> QueryResult:
        """Run one statement.  Against a replica, ``min_lsn`` demands the
        answer reflect at least that commit LSN (waiting up to
        ``lsn_wait`` seconds for replication) — pass the ``commit_lsn``
        of your own write for read-your-writes.  ``era`` stamps a write
        with the fencing era the caller believes in: a node holding an
        older era fences itself and refuses with ``NOT_PRIMARY`` instead
        of acknowledging a write the cluster would not honor.
        ``budget`` bounds the whole call — retries included — and is
        forwarded so the server clamps its own timeout to it."""
        payload = {"sql": sql, "strategy": strategy, "engine": engine}
        if params is not None:
            payload["params"] = params
        if timeout is not None:
            payload["timeout"] = timeout
        if min_lsn is not None:
            payload["min_lsn"] = min_lsn
        if lsn_wait is not None:
            payload["lsn_wait"] = lsn_wait
        if era is not None:
            payload["era"] = era
        return _result(self._request("POST", "/query", payload, budget=budget))

    # -- sessions and prepared statements -----------------------------------

    def session(self, pin_snapshot: bool = False) -> "ClientSession":
        payload = {"pin_snapshot": True} if pin_snapshot else {}
        body = self._request("POST", "/session", payload)
        session = ClientSession(self, body["session"])
        session.snapshot_lsn = body.get("snapshot_lsn")
        return session

    # -- operations ---------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")

    # -- replication stream (used by the replica's follower) ----------------

    def replication_snapshot(self) -> dict:
        """Fetch the primary's full-state bootstrap payload."""
        return self._request("POST", "/replication/snapshot", {})

    def replication_wal(
        self,
        from_lsn: int,
        max_records: int | None = None,
        wait: float | None = None,
    ) -> dict:
        """Fetch raw WAL frames past ``from_lsn`` (long-polls ``wait``s)."""
        payload: dict = {"from_lsn": from_lsn}
        if max_records is not None:
            payload["max_records"] = max_records
        if wait is not None:
            payload["wait"] = wait
        return self._request("POST", "/replication/wal", payload)

    # -- cluster control (used by the failover coordinator) ------------------

    def replication_topology(self) -> dict:
        """The node's own view of its role, era, and log position."""
        return self._request("POST", "/replication/topology", {})

    def replication_promote(self, era: int) -> dict:
        """Promote the node to primary of ``era`` (durable era record)."""
        return self._request("POST", "/replication/promote", {"era": era})

    def replication_demote(self, era: int, leader_url: str | None = None) -> dict:
        """Fence the node: a newer ``era`` reigns (optionally: where)."""
        payload: dict = {"era": era}
        if leader_url is not None:
            payload["leader_url"] = leader_url
        return self._request("POST", "/replication/demote", payload)

    def replication_repoint(self, leader_url: str, era: int) -> dict:
        """Point a replica's follower at a (newly promoted) primary."""
        return self._request(
            "POST", "/replication/repoint", {"leader_url": leader_url, "era": era}
        )


class ClientSession:
    """A server session; usable as a context manager (closes on exit)."""

    def __init__(self, client: ServiceClient, session_id: str):
        self.client = client
        self.id = session_id
        #: The LSN this session reads at, or None when unpinned.
        self.snapshot_lsn: int | None = None

    def prepare(self, sql: str, strategy: str = "auto") -> "ClientStatement":
        body = self.client._request(
            "POST", "/prepare", {"session": self.id, "sql": sql, "strategy": strategy}
        )
        return ClientStatement(self, body["statement"], body["params"])

    def query(
        self,
        sql: str,
        params=None,
        strategy: str = "auto",
        timeout: float | None = None,
        engine: str = "row",
    ) -> QueryResult:
        """Ad-hoc query inside this session (reads its pinned snapshot)."""
        payload = {
            "sql": sql,
            "strategy": strategy,
            "engine": engine,
            "session": self.id,
        }
        if params is not None:
            payload["params"] = params
        if timeout is not None:
            payload["timeout"] = timeout
        return _result(self.client._request("POST", "/query", payload))

    def pin(self) -> int:
        """Pin (or move the pin) to the current commit LSN; returns it."""
        body = self.client._request("POST", "/session/pin", {"session": self.id})
        self.snapshot_lsn = body["snapshot_lsn"]
        return self.snapshot_lsn

    def unpin(self) -> None:
        self.client._request("POST", "/session/unpin", {"session": self.id})
        self.snapshot_lsn = None

    def close(self) -> None:
        self.client._request("POST", "/session/close", {"session": self.id})

    def __enter__(self) -> "ClientSession":
        return self

    def __exit__(self, *exc) -> None:
        try:
            self.close()
        except ReproError:
            pass  # session may be gone if the server restarted


class ClientStatement:
    """A prepared statement handle living in a server session."""

    def __init__(self, session: ClientSession, statement_id: str, params: dict):
        self.session = session
        self.id = statement_id
        self.params = params  # {"positional": n, "named": [...]}

    def execute(
        self,
        params=None,
        timeout: float | None = None,
        engine: str = "row",
    ) -> QueryResult:
        payload = {"session": self.session.id, "statement": self.id, "engine": engine}
        if params is not None:
            payload["params"] = params
        if timeout is not None:
            payload["timeout"] = timeout
        return _result(self.session.client._request("POST", "/execute", payload))


def _result(body: dict) -> QueryResult:
    return QueryResult(
        columns=body["columns"],
        rows=[tuple(row) for row in body["rows"]],
        row_count=body["row_count"],
        truncated=body["truncated"],
        elapsed=body["elapsed"],
        commit_lsn=body.get("commit_lsn"),
        applied_lsn=body.get("applied_lsn"),
        era=body.get("era"),
    )
