"""The query service layer: prepared statements, plan cache, SQL server.

Disjunctive-unnesting plans are expensive to derive (the rewrite search
over Equivalences 1–5 plus cost-based bypass placement) and cheap to
reuse, which is exactly the trade a plan cache rewards.  This package
adds the serving machinery on top of the single-shot
:class:`repro.Database` façade:

* :mod:`repro.service.plancache` — a normalized plan cache keyed on the
  canonicalized AST, with LRU bounds and statistics-drift invalidation;
* :mod:`repro.service.prepared` — prepared statements (``?`` and
  ``:name`` placeholders) bound per execution with 3VL NULL semantics;
* :mod:`repro.service.metrics` — latency percentiles and counters for
  the ``/metrics`` endpoint;
* :mod:`repro.service.server` — a concurrent JSON-over-HTTP SQL server
  (stdlib ``ThreadingHTTPServer``) with sessions, per-query timeouts,
  and admission control;
* :mod:`repro.service.client` — a tiny stdlib client for that server,
  with retry/backoff and a circuit breaker;
* :mod:`repro.service.resilience` — the retry policy and circuit
  breaker primitives themselves.

See ``docs/service.md`` for the wire protocol.
"""

from repro.service.plancache import CacheInfo, PlanCache
from repro.service.prepared import PreparedStatement
from repro.service.resilience import CircuitBreaker, RetryPolicy
from repro.service.server import QueryServer, QueryService, ServerConfig

__all__ = [
    "CacheInfo",
    "CircuitBreaker",
    "PlanCache",
    "PreparedStatement",
    "QueryServer",
    "QueryService",
    "RetryPolicy",
    "ServerConfig",
]
