"""A concurrent SQL server: JSON over HTTP on stdlib machinery.

``ThreadingHTTPServer`` gives one thread per connection; the interesting
parts live above it:

* **admission control** — at most ``max_in_flight`` queries execute
  concurrently; up to ``max_queue`` more may wait ``queue_timeout``
  seconds for a slot; everything beyond that is rejected *immediately*
  with a structured ``SERVER_OVERLOADED`` error (HTTP 429) instead of
  queueing unboundedly;
* **per-query timeouts** — the request's ``timeout`` (or the server
  default) becomes :attr:`EvalOptions.budget_seconds`, enforced
  cooperatively inside both engines, so a runaway query ends with a
  ``QUERY_TIMEOUT`` error while its thread survives;
* **cooperative shutdown** — ``POST /shutdown`` sets a shared cancel
  event polled by every in-flight execution, so draining takes one tick
  interval, not one query;
* **sessions & prepared statements** — ``POST /session`` returns an id;
  ``/prepare`` plans a parameterized template into that session and
  ``/execute`` binds values per call, all backed by the database's plan
  cache.

Wire protocol (see ``docs/service.md`` for the full reference)::

    GET  /healthz                         -> {"status": "ok", ...}
    GET  /health                          -> {"live": ..., "ready": ...}
                                             (503 while draining)
    GET  /metrics                         -> counters, latency, cache
    POST /session        {pin_snapshot?}   -> {"session": id, "snapshot_lsn"?}
    POST /session/close  {session}        -> {"closed": true}
    POST /session/pin    {session}        -> {"pinned": true, "snapshot_lsn"}
    POST /session/unpin  {session}        -> {"pinned": false}
    POST /prepare        {session, sql, strategy?}
                                          -> {"statement": id, "params": ...}
    POST /execute        {session, statement, params?, timeout?, engine?}
    POST /query          {sql, params?, strategy?, timeout?, engine?}
    POST /replication/snapshot {}         -> {"lsn", "state", "commit_lsn",
                                              "era", "era_lsn"}
    POST /replication/wal {from_lsn, max_records?, wait?}
                                          -> {"base_lsn", "last_lsn",
                                              "records", "frames",
                                              "snapshot_required",
                                              "era", "era_lsn", ...}
    POST /replication/topology {}         -> {"role", "era", "era_lsn",
                                              "fenced", "wal_lsn",
                                              "leader_url", ...}
    POST /replication/promote  {era}      -> {"promoted": true, "era", ...}
    POST /replication/demote   {era, leader_url?}
                                          -> {"fenced": true, "era", ...}
    POST /replication/repoint  {leader_url, era}  (replicas only)
    POST /shutdown       {}               -> {"shutting_down": true}

Failover (see ``docs/replication.md``): every node carries a **fencing
era** — a monotonic term persisted as a WAL control record.  A fenced
node (demoted by the coordinator, started with ``fenced=True``, or one
that learns from a request's ``era`` field that a newer era exists)
refuses writes with a structured ``NOT_PRIMARY`` (HTTP 409) carrying the
newest era and the leader's address, so a stale ex-primary can never
acknowledge a write after the cluster has moved on.

Write responses (``/query`` and ``/execute`` against a durable primary)
carry ``commit_lsn`` — the WAL LSN after the statement — as a causality
token a client can hand to a replica as ``min_lsn`` to guarantee
read-your-writes (see ``docs/replication.md``).

Every error body is ``{"error": {"code": ..., "message": ...}}`` — the
``code`` comes from :mod:`repro.errors`; tracebacks never cross the wire.
"""

from __future__ import annotations

import base64
import json
import threading
import time
import uuid
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.engine import EvalOptions
from repro.errors import (
    AdmissionRejected,
    BadRequestError,
    BudgetExceeded,
    InjectedFault,
    NotPrimary,
    QueryCancelled,
    ReplicaLagging,
    ReplicationError,
    ReproError,
    ServiceUnavailable,
    SessionError,
)
from repro.faults import injector_from_env
from repro.replication.stream import SITE_STREAM_SERVE, SITE_STREAM_TORN
from repro.service.metrics import ServerMetrics
from repro.sim.clock import SYSTEM_CLOCK

#: repro.errors code -> HTTP status.  Anything not listed is a client
#: error (400); unexpected exceptions map to INTERNAL_ERROR / 500.
_STATUS_BY_CODE = {
    "SERVER_OVERLOADED": 429,
    "QUERY_TIMEOUT": 408,
    "QUERY_CANCELLED": 503,
    "SERVICE_UNAVAILABLE": 503,
    "FAULT_INJECTED": 503,
    "RESOURCE_EXHAUSTED": 413,
    "UNKNOWN_SESSION": 404,
    "CATALOG_ERROR": 404,
    "REPLICA_LAGGING": 503,
    "READ_ONLY_REPLICA": 403,
    "NOT_PRIMARY": 409,
    "INTERNAL_ERROR": 500,
}

#: Refuse request bodies beyond this (a query text, not a bulk loader).
MAX_BODY_BYTES = 1 << 20

#: Statement prefixes that mutate (DML plus table/view/index DDL — the
#: same split Database.execute makes).  Used by the primary's fencing
#: write gate and by replicas to refuse writes outright.
WRITE_PREFIXES = ("insert", "delete", "update", "create", "drop")


@dataclass(frozen=True)
class ServerConfig:
    """Tunables for :class:`QueryServer`."""

    host: str = "127.0.0.1"
    port: int = 8080  # 0 = pick an ephemeral port
    max_in_flight: int = 4
    max_queue: int = 8
    queue_timeout: float = 2.0
    default_timeout: float = 30.0
    max_rows: int = 10_000  # result-size guard per response
    #: Per-query resource budgets (see repro.engine.governor), applied
    #: to every request; None leaves only the REPRO_GOVERNOR_* env vars.
    resources: object = None
    #: Seconds a graceful drain waits for in-flight queries to finish
    #: before cancelling them (see QueryServer.drain).
    drain_grace: float = 10.0
    #: Sessions idle longer than this are expired (their snapshot pin is
    #: released — a leaked pin blocks MVCC version GC).  None disables.
    session_ttl: float | None = 3600.0
    #: Ceiling on the per-request long-poll/read-gate waits (the
    #: ``wait`` of /replication/wal and the ``lsn_wait`` of a min_lsn
    #: read): a client cannot park a handler thread longer than this.
    max_wait_seconds: float = 30.0
    #: The URL other nodes should use to reach this one; reported by
    #: /replication/topology and handed out in NOT_PRIMARY redirects.
    advertise_url: str | None = None
    #: Start fenced: refuse writes with NOT_PRIMARY until a coordinator
    #: confirms this node's reign (/replication/promote).  The safe way
    #: to revive an ex-primary whose cluster may have moved on.
    fenced: bool = False
    #: Time source (see repro.sim.clock); None = the system clock.  The
    #: simulator injects a VirtualClock so session GC and drain run on
    #: virtual time.
    clock: object = None


class _Session:
    def __init__(self, session_id: str, clock=SYSTEM_CLOCK):
        self.id = session_id
        self._clock = clock
        self.created = clock.now()
        self.last_used = clock.monotonic()
        self.statements: dict[str, object] = {}
        self.lock = threading.Lock()
        #: MVCC pin: while set, every query in this session reads the
        #: pinned LSN — a stable snapshot across requests, immune to
        #: concurrent commits (released on unpin/close).
        self.snapshot: object | None = None

    def touch(self) -> None:
        self.last_used = self._clock.monotonic()


class _Admission:
    """Counting semaphore + bounded wait queue + fast rejection."""

    def __init__(self, max_in_flight: int, max_queue: int, queue_timeout: float):
        self._slots = threading.Semaphore(max_in_flight)
        self._queue_timeout = queue_timeout
        self._max_queue = max_queue
        self._waiting = 0
        self._lock = threading.Lock()

    def __enter__(self):
        if self._slots.acquire(blocking=False):
            return self
        with self._lock:
            if self._waiting >= self._max_queue:
                raise AdmissionRejected(
                    "server at capacity (in-flight limit and queue are full); retry later"
                )
            self._waiting += 1
        try:
            admitted = self._slots.acquire(timeout=self._queue_timeout)
        finally:
            with self._lock:
                self._waiting -= 1
        if not admitted:
            raise AdmissionRejected(
                "server at capacity (queued request timed out waiting for a slot)"
            )
        return self

    def __exit__(self, *exc):
        self._slots.release()
        return False

    def snapshot(self) -> dict:
        with self._lock:
            return {"queued": self._waiting, "max_queue": self._max_queue}


class QueryService:
    """The HTTP-agnostic request logic (unit-testable without sockets).

    ``database`` is either a ready :class:`~repro.Database` or a
    zero-argument callable returning one.  A callable defers the
    expensive part of startup — typically ``Database.open`` replaying a
    WAL — to :meth:`startup`, which the server runs on a background
    thread while HTTP is already answering: ``/health`` reports
    ``ready: false`` (503) and queries are refused with a retryable
    ``SERVICE_UNAVAILABLE`` until recovery finishes.
    """

    def __init__(self, database, config: ServerConfig | None = None):
        if callable(database):
            self._db: object | None = None
            self._db_factory = database
        else:
            self._db = database
            self._db_factory = None
        self.config = config or ServerConfig()
        self.clock = self.config.clock or SYSTEM_CLOCK
        self.metrics = ServerMetrics()
        self.cancel_event = threading.Event()
        #: Set once the database is attached (immediately for a ready
        #: database, after recovery for a deferred factory).
        self.ready = threading.Event()
        #: Set once the startup phase is *over*, successfully or not —
        #: the event companions of ``ready``/``startup_error`` for
        #: waiters that must not spin-poll (the replica's follower
        #: thread parks on this instead of sleeping in a loop).
        self.startup_finished = threading.Event()
        if self._db is not None:
            self.ready.set()
            self.startup_finished.set()
        self.startup_error: str | None = None
        #: Set while the server drains: new queries are refused with
        #: SERVICE_UNAVAILABLE (503) but in-flight ones run to completion
        #: (until the drain grace expires and cancel_event fires).
        self.draining = threading.Event()
        self._admission = _Admission(
            self.config.max_in_flight, self.config.max_queue, self.config.queue_timeout
        )
        self._sessions: dict[str, _Session] = {}
        self._sessions_lock = threading.Lock()
        self._sessions_expired = 0
        self._last_session_sweep = self.clock.monotonic()
        self._repl_lock = threading.Lock()
        self._repl_counters = {
            "snapshots_served": 0,
            "tails_served": 0,
            "records_streamed": 0,
            "torn_frames_injected": 0,
        }
        self._shutdown_callback = None
        # Cluster-role state (fencing-era failover).  ``_fenced`` starts
        # from config; ``_fenced_era`` remembers the era that fenced us
        # (0 when fenced at startup before hearing one); ``_leader_url``
        # is the best-known leader to redirect writers to.
        self._cluster_lock = threading.Lock()
        self._fenced = self.config.fenced
        self._fenced_era = 0
        self._leader_url: str | None = None
        self._not_primary_rejections = 0

    @property
    def db(self):
        database = self._db
        if database is None:
            message = (
                f"server startup failed: {self.startup_error}"
                if self.startup_error is not None
                else "server is recovering and not yet admitting queries; retry shortly"
            )
            raise ServiceUnavailable(message)
        return database

    def startup(self) -> None:
        """Resolve a deferred database factory (the recovery phase).

        ``startup_finished`` is set on every exit path — success or
        failure — so event-driven waiters wake exactly once instead of
        polling ``ready``/``startup_error``.
        """
        if self._db_factory is None or self._db is not None:
            self.ready.set()
            self.startup_finished.set()
            return
        try:
            self._db = self._db_factory()
        except Exception as error:  # surfaced via /health, never swallowed silently
            self.startup_error = f"{type(error).__name__}: {error}"
            self.startup_finished.set()
            return
        self.ready.set()
        self.startup_finished.set()

    # -- dispatch -----------------------------------------------------------

    def handle(self, method: str, path: str, payload: dict) -> tuple[int, dict]:
        """Route one request; returns ``(http_status, response_body)``."""
        self.metrics.record_request()
        self._expire_sessions()
        try:
            if method == "GET" and path == "/healthz":
                return 200, {"status": "ok", "in_flight": self.metrics.snapshot()["in_flight"]}
            if method == "GET" and path == "/health":
                return self._health()
            if method == "GET" and path == "/metrics":
                return 200, self._metrics_body()
            if method == "POST" and path == "/session":
                return 200, self._create_session(payload)
            if method == "POST" and path == "/session/close":
                return 200, self._close_session(payload)
            if method == "POST" and path == "/session/pin":
                return 200, self._pin_session(payload)
            if method == "POST" and path == "/session/unpin":
                return 200, self._unpin_session(payload)
            if method == "POST" and path == "/prepare":
                return 200, self._prepare(payload)
            if method == "POST" and path == "/execute":
                return 200, self._execute(payload)
            if method == "POST" and path == "/query":
                return 200, self._query(payload)
            if method == "POST" and path == "/replication/snapshot":
                return 200, self._replication_snapshot(payload)
            if method == "POST" and path == "/replication/wal":
                return 200, self._replication_wal(payload)
            if method in ("GET", "POST") and path == "/replication/topology":
                return 200, self._topology()
            if method == "POST" and path == "/replication/promote":
                return 200, self._promote(payload)
            if method == "POST" and path == "/replication/demote":
                return 200, self._demote(payload)
            if method == "POST" and path == "/replication/repoint":
                return 200, self._repoint(payload)
            if method == "POST" and path == "/shutdown":
                return 200, self._shutdown()
            raise BadRequestError(f"no such endpoint: {method} {path}")
        except AdmissionRejected as error:
            self.metrics.record_rejection()
            return _STATUS_BY_CODE[error.code], {"error": error.as_dict()}
        except ReproError as error:
            status = _STATUS_BY_CODE.get(error.code, 400)
            return status, {"error": error.as_dict()}
        except Exception:
            # Deliberately opaque: internals stay on the server side.
            return 500, {
                "error": {"code": "INTERNAL_ERROR", "message": "internal server error"}
            }

    # -- endpoints ----------------------------------------------------------

    def _health(self) -> tuple[int, dict]:
        """Kubernetes-style liveness/readiness: *live* while the process
        serves HTTP at all, *ready* only while queries are admitted —
        a recovering server (WAL replay still running) and a draining one
        are both live but not ready, so load balancers hold traffic (503)
        until recovery finishes or route it elsewhere during drain."""
        draining = self.draining.is_set()
        recovering = not self.ready.is_set() and self.startup_error is None
        ready = not draining and not recovering and self.startup_error is None
        body = {
            "live": True,
            "ready": ready,
            "draining": draining,
            "recovering": recovering,
            "in_flight": self.metrics.snapshot()["in_flight"],
        }
        if self.startup_error is not None:
            body["startup_error"] = self.startup_error
        return (200 if ready else 503), body

    def _metrics_body(self) -> dict:
        with self._sessions_lock:
            session_count = len(self._sessions)
        body = {
            "server": self.metrics.snapshot(),
            "admission": self._admission.snapshot(),
            "sessions": session_count,
            "sessions_expired": self._sessions_expired,
            "draining": self.draining.is_set(),
            "ready": self.ready.is_set(),
        }
        database = self._db
        if database is None:
            return body
        body["plan_cache"] = database.cache_info().as_dict()
        body["tables"] = database.catalog.table_names()
        resilience = getattr(database, "resilience_info", None)
        if resilience is not None:
            body["resilience"] = resilience()
        access = getattr(database, "access_info", None)
        if access is not None:
            body["access_paths"] = access()
        durability = getattr(database, "durability_info", None)
        if durability is not None:
            body["durability"] = durability()
        mvcc = getattr(database, "mvcc_info", None)
        if mvcc is not None:
            body["mvcc"] = mvcc()
        parallel = getattr(database, "parallel_info", None)
        if parallel is not None:
            body["parallel"] = parallel()
        with self._repl_lock:
            replication = dict(self._repl_counters)
        replication["role"] = self._role()
        replication["commit_lsn"] = getattr(database, "wal_lsn", 0)
        replication["era"] = getattr(database, "era", 0)
        replication["era_lsn"] = getattr(database, "era_lsn", 0)
        with self._cluster_lock:
            replication["fenced"] = self._fenced
            replication["leader_url"] = self._leader_url
            replication["not_primary_rejections"] = self._not_primary_rejections
        body["replication"] = replication
        return body

    def _create_session(self, payload: dict) -> dict:
        session = _Session(uuid.uuid4().hex, self.clock)
        body = {"session": session.id}
        if payload.get("pin_snapshot"):
            session.snapshot = self.db.pin_snapshot()
            body["snapshot_lsn"] = session.snapshot.lsn
        with self._sessions_lock:
            self._sessions[session.id] = session
        return body

    def _close_session(self, payload: dict) -> dict:
        session_id = _required_str(payload, "session")
        with self._sessions_lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise SessionError(f"unknown session {session_id!r}")
        self._release_pin(session)
        return {"closed": True}

    def _release_pin(self, session: _Session) -> None:
        with session.lock:
            handle = session.snapshot
            session.snapshot = None
        if handle is not None:
            self.db.release_snapshot(handle)

    def _pin_session(self, payload: dict) -> dict:
        """Pin the session at the current commit LSN (re-pin moves it)."""
        session = self._session(payload)
        handle = self.db.pin_snapshot()
        with session.lock:
            old = session.snapshot
            session.snapshot = handle
        if old is not None:
            self.db.release_snapshot(old)
        return {"pinned": True, "snapshot_lsn": handle.lsn}

    def _unpin_session(self, payload: dict) -> dict:
        session = self._session(payload)
        self._release_pin(session)
        return {"pinned": False}

    def _session_lsn(self, session: _Session) -> int | None:
        with session.lock:
            handle = session.snapshot
        return None if handle is None else handle.lsn

    def _session(self, payload: dict) -> _Session:
        session_id = _required_str(payload, "session")
        with self._sessions_lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise SessionError(f"unknown session {session_id!r}")
        session.touch()
        return session

    def _expire_sessions(self) -> None:
        """Drop sessions idle past ``session_ttl`` and release their pins.

        Runs inline on the request path (no reaper thread to manage) but
        only actually sweeps every ``ttl/4`` seconds.  Releasing the
        snapshot pin is the point, not a nicety: an expired session that
        kept its pin would block MVCC version GC forever.
        """
        ttl = self.config.session_ttl
        if not ttl:
            return
        now = self.clock.monotonic()
        if now - self._last_session_sweep < min(max(ttl / 4.0, 0.01), 60.0):
            return
        self._last_session_sweep = now
        expired = []
        with self._sessions_lock:
            for session_id, session in list(self._sessions.items()):
                if now - session.last_used > ttl:
                    del self._sessions[session_id]
                    expired.append(session)
        for session in expired:
            self._sessions_expired += 1
            try:
                self._release_pin(session)
            except ReproError:
                pass  # db not attached yet/any more; the pin died with it

    def _prepare(self, payload: dict) -> dict:
        session = self._session(payload)
        sql = _required_str(payload, "sql")
        strategy = _optional_str(payload, "strategy", "auto")
        statement = self.db.prepare(sql, strategy)
        statement_id = uuid.uuid4().hex[:12]
        with session.lock:
            session.statements[statement_id] = statement
        return {"statement": statement_id, "params": statement.describe()}

    def _execute(self, payload: dict) -> dict:
        session = self._session(payload)
        statement_id = _required_str(payload, "statement")
        with session.lock:
            statement = session.statements.get(statement_id)
        if statement is None:
            raise BadRequestError(f"unknown statement {statement_id!r} in session")
        template = getattr(statement, "sql", "")
        if template.lstrip().lower().startswith(WRITE_PREFIXES):
            self._write_gate(payload)
        else:
            self._causality_gate(payload)
        params = _params_of(payload)
        at_lsn = self._session_lsn(session)
        return self._annotate(
            self._run(
                lambda options: statement.execute(params, options=options, at_lsn=at_lsn),
                payload,
            )
        )

    def _query(self, payload: dict) -> dict:
        sql = _required_str(payload, "sql")
        if sql.lstrip().lower().startswith(WRITE_PREFIXES):
            self._write_gate(payload)
        else:
            self._causality_gate(payload)
        strategy = _optional_str(payload, "strategy", "auto")
        params = _params_of(payload)
        # An optional pinned session makes ad-hoc queries read the
        # session's stable snapshot instead of the current commit LSN.
        at_lsn = None
        if isinstance(payload.get("session"), str):
            at_lsn = self._session_lsn(self._session(payload))
        return self._annotate(
            self._run(
                lambda options: self.db.execute(
                    sql, strategy, options=options, params=params, at_lsn=at_lsn
                ),
                payload,
            )
        )

    def _annotate(self, body: dict) -> dict:
        """Stamp the causality token: the WAL LSN after this statement.

        A client that just wrote holds ``commit_lsn`` and can demand
        ``min_lsn=commit_lsn`` from any replica — read-your-writes
        without waiting for replication on the write path itself.
        """
        database = self._db
        if database is not None:
            lsn = getattr(database, "wal_lsn", 0)
            if lsn:
                body["commit_lsn"] = lsn
            era = getattr(database, "era", 0)
            if era:
                body["era"] = era
        return body

    # -- replication stream (primary side) ----------------------------------

    def _replication_snapshot(self, payload: dict) -> dict:
        """Full-state bootstrap for a new (or resyncing) replica.

        Returns the snapshot-file state shape at a consistent LSN; the
        follower writes it as a *local* snapshot so its own WAL bases at
        the same LSN and stays record-for-record aligned with ours.
        """
        injector = injector_from_env()
        if injector is not None:
            injector.maybe_fail(SITE_STREAM_SERVE)
        database = self.db
        snapshot = database.replication_snapshot()
        with self._repl_lock:
            self._repl_counters["snapshots_served"] += 1
        return {
            "lsn": snapshot["lsn"],
            "state": snapshot["state"],
            "commit_lsn": snapshot["lsn"],
            "era": getattr(database, "era", 0),
            "era_lsn": getattr(database, "era_lsn", 0),
            "era_history": _shippable_era_history(database),
        }

    def _replication_wal(self, payload: dict) -> dict:
        """Stream WAL frames after ``from_lsn`` (long-polls via ``wait``).

        The response reuses the on-disk record framing verbatim — raw
        CRC-framed bytes, base64-armored for JSON — so the follower
        validates them with the same checksum scan recovery uses and a
        torn tail (injected or real) degrades to a clean shorter batch.
        """
        from_lsn = payload.get("from_lsn")
        if isinstance(from_lsn, bool) or not isinstance(from_lsn, int) or from_lsn < 0:
            raise BadRequestError("'from_lsn' must be a non-negative integer")
        max_records = payload.get("max_records", 512)
        if (
            isinstance(max_records, bool)
            or not isinstance(max_records, int)
            or not 1 <= max_records <= 4096
        ):
            raise BadRequestError("'max_records' must be an integer in [1, 4096]")
        wait = payload.get("wait", 0.0)
        if isinstance(wait, bool) or not isinstance(wait, (int, float)) or wait < 0:
            raise BadRequestError("'wait' must be a non-negative number of seconds")
        wait = min(float(wait), self.config.max_wait_seconds)
        injector = injector_from_env()
        if injector is not None:
            injector.maybe_fail(SITE_STREAM_SERVE)
        database = self.db
        tail = database.replication_wal_tail(from_lsn, max_records=max_records, wait=wait)
        frames = tail.frames
        if injector is not None and frames:
            try:
                injector.maybe_fail(SITE_STREAM_TORN)
            except InjectedFault:
                # Serve a deliberately torn batch: cut mid-frame so the
                # follower's CRC scan must discard the damaged suffix.
                frames = frames[: max(1, len(frames) // 2)]
                with self._repl_lock:
                    self._repl_counters["torn_frames_injected"] += 1
        with self._repl_lock:
            self._repl_counters["tails_served"] += 1
            self._repl_counters["records_streamed"] += tail.records
        return {
            "base_lsn": tail.base_lsn,
            "last_lsn": tail.last_lsn,
            "records": tail.records,
            "snapshot_required": tail.snapshot_required,
            "frames": base64.b64encode(frames).decode("ascii"),
            "commit_lsn": tail.last_lsn,
            # The era this stream speaks for: a follower on a newer era
            # rejects the batch; one whose log already reaches a reign
            # boundary it never applied knows it diverged.  The full
            # (era, era_lsn) history rides along so even a node that
            # slept through several failovers can spot the first reign
            # record its own log missed.
            "era": getattr(database, "era", 0),
            "era_lsn": getattr(database, "era_lsn", 0),
            "era_history": _shippable_era_history(database),
        }

    # -- cluster role (fencing-era failover) ---------------------------------

    def _role(self) -> str:
        return "primary"

    def _write_gate(self, payload: dict) -> None:
        """Refuse writes once this node's reign is over (split-brain guard).

        Two triggers: the node is *fenced* (demoted by the coordinator,
        or started fenced after a crash), or the request itself carries
        an ``era`` newer than ours — proof the cluster promoted someone
        else while we were isolated; we fence in place and answer this
        and every later write with ``NOT_PRIMARY``.
        """
        era = payload.get("era")
        if era is not None and (
            isinstance(era, bool) or not isinstance(era, int) or era < 0
        ):
            raise BadRequestError("'era' must be a non-negative integer")
        database = self.db
        own_era = getattr(database, "era", 0)
        with self._cluster_lock:
            if self._fenced:
                self._not_primary_rejections += 1
                raise NotPrimary(max(self._fenced_era, own_era), self._leader_url)
            if era is not None and era > own_era:
                self._fenced = True
                self._fenced_era = era
                self._not_primary_rejections += 1
                raise NotPrimary(era, self._leader_url)

    def _causality_gate(self, payload: dict) -> None:
        """Honor ``min_lsn`` and ``era`` on the primary's read path.

        On a healthy primary every commit is already visible, so this
        never fires for tokens the node itself issued.  It exists for
        the failover window, and LSNs alone are not enough there: a
        deposed primary's log keeps the divergent suffix it acknowledged
        while isolated, so its ``wal_lsn`` can *pass* a token the new
        timeline issued while the data behind it is a different history.
        The era closes that hole — a read stamped with era N may only be
        served by a node that has proven era N's timeline:

        * a **fenced** node refuses every causal read (era- or
          token-stamped): it froze with a possibly-divergent suffix and
          cannot tell which of its records the cluster kept;
        * an unfenced node seeing ``era`` newer than its own is deposed
          and just found out — it fences in place (same as the write
          gate) and refuses;
        * otherwise the plain LSN gate applies.

        All refusals are retryable ``REPLICA_LAGGING`` — the replica-set
        client moves on to a node that can actually honor the read.
        """
        min_lsn = payload.get("min_lsn")
        if min_lsn is not None and (
            isinstance(min_lsn, bool) or not isinstance(min_lsn, int) or min_lsn < 0
        ):
            raise BadRequestError("'min_lsn' must be a non-negative integer")
        era = payload.get("era")
        if era is not None and (
            isinstance(era, bool) or not isinstance(era, int) or era < 0
        ):
            raise BadRequestError("'era' must be a non-negative integer")
        if min_lsn is None and not era:
            return
        applied = getattr(self.db, "wal_lsn", 0)
        own_era = getattr(self.db, "era", 0)
        with self._cluster_lock:
            if self._fenced:
                raise ReplicaLagging(
                    min_lsn or 0,
                    applied,
                    message=(
                        f"this node is fenced (era {max(self._fenced_era, own_era)});"
                        " its log may diverge from the surviving timeline —"
                        " retry on the current primary or a repointed replica"
                    ),
                )
            if era and era > own_era:
                self._fenced = True
                self._fenced_era = era
                raise ReplicaLagging(
                    min_lsn or 0,
                    applied,
                    message=(
                        f"read is stamped with era {era} but this node only"
                        f" reached era {own_era}; it is deposed and now fenced"
                    ),
                )
        if min_lsn is not None and applied < min_lsn:
            raise ReplicaLagging(min_lsn, applied)

    def _topology(self) -> dict:
        """The node's own view of the cluster: role, era, log position."""
        database = self.db
        with self._cluster_lock:
            fenced = self._fenced
            fenced_era = self._fenced_era
            leader = self._leader_url
        if not fenced and leader is None:
            leader = self.config.advertise_url
        wal_lsn = getattr(database, "wal_lsn", 0)
        return {
            "role": self._role(),
            "fenced": fenced,
            "fenced_era": fenced_era,
            "era": getattr(database, "era", 0),
            "era_lsn": getattr(database, "era_lsn", 0),
            "wal_lsn": wal_lsn,
            "applied_lsn": wal_lsn,
            "leader_url": leader,
        }

    def _promote(self, payload: dict) -> dict:
        """Install (or confirm) a reign: bump the era durably, unfence.

        ``era`` equal to ours confirms an existing reign (unfencing a
        ``fenced=True`` startup); a newer one is written as an ``era``
        WAL control record — the first record of the new reign, whose
        LSN is what rejoining nodes use to detect divergent suffixes.
        """
        era = _era_of(payload)
        database = self.db
        own_era = getattr(database, "era", 0)
        if era < own_era:
            raise ReplicationError(
                f"stale promotion: era {era} is behind this node's era {own_era}"
            )
        if era > own_era:
            database.bump_era(era)
        with self._cluster_lock:
            self._fenced = False
            self._fenced_era = 0
            self._leader_url = self.config.advertise_url
        return {
            "promoted": True,
            "role": self._role(),
            "era": getattr(database, "era", 0),
            "era_lsn": getattr(database, "era_lsn", 0),
            "applied_lsn": getattr(database, "wal_lsn", 0),
        }

    def _demote(self, payload: dict) -> dict:
        """Fence this node: a newer era reigns elsewhere — or the *same*
        era does, on a different node.

        Same-era demotion is how a concurrent-promotion race converges:
        when two coordinators (or an operator's ``repro promote`` racing
        the coordinator) install the same era on two nodes, exactly one
        of them — the lowest-URL primary at the newest era, the same
        deterministic rule every coordinator applies — keeps the reign,
        and the loser is fenced *at* that era.  Only an era strictly
        older than ours is refused.

        Deliberately does NOT write an era record — the new era's WAL
        record belongs to the new primary's timeline, and logging it
        here would defeat the divergence detection a rejoin relies on.
        The fence is in-memory; a restarted ex-primary must come back
        ``fenced=True`` (the CLI's ``--fenced``) or will fence itself on
        the first era-carrying write it sees.
        """
        era = _era_of(payload)
        leader = payload.get("leader_url")
        if leader is not None and not isinstance(leader, str):
            raise BadRequestError("'leader_url' must be a string")
        own_era = getattr(self.db, "era", 0)
        with self._cluster_lock:
            if era < own_era:
                raise ReplicationError(
                    f"demotion era {era} is behind this node's era {own_era}"
                )
            self._fenced = True
            self._fenced_era = max(self._fenced_era, era)
            if leader:
                self._leader_url = leader
            return {"fenced": True, "era": self._fenced_era, "leader_url": self._leader_url}

    def _repoint(self, payload: dict) -> dict:
        raise ReplicationError("only replicas can be repointed at a new primary")

    def _shutdown(self) -> dict:
        self.cancel_event.set()
        callback = self._shutdown_callback
        if callback is not None:
            threading.Thread(target=callback, daemon=True).start()
        return {"shutting_down": True}

    # -- query execution ----------------------------------------------------

    def _run(self, thunk, payload: dict) -> dict:
        if self.draining.is_set():
            raise ServiceUnavailable(
                "server is draining and no longer admits queries; retry elsewhere"
            )
        if not self.ready.is_set():
            # Touch the db property for its precise message (recovery in
            # progress vs. startup failure).
            self.db
        # Chaos hook: a fresh env-configured injector per request keeps a
        # seeded fault sequence deterministic per query.  The engine-level
        # sites are armed separately by Database.execute; this one covers
        # the service edge itself.
        injector = injector_from_env()
        if injector is not None:
            injector.maybe_fail("service.request")
        timeout = payload.get("timeout", self.config.default_timeout)
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise BadRequestError("'timeout' must be a number (seconds) or null")
        budget = _budget_of(payload)
        if budget is not None:
            # Deadline propagation: the client sent how much of *its*
            # time budget is left; running the query longer than that is
            # pure waste (the caller has already given up on us), so the
            # per-query timeout is clamped to it.
            timeout = budget if timeout is None else min(timeout, budget)
        engine = _optional_str(payload, "engine", "row")
        if engine not in ("row", "vectorized"):
            raise BadRequestError(f"unknown engine {engine!r} (row | vectorized)")
        options = EvalOptions(
            budget_seconds=timeout,
            vectorized=engine == "vectorized",
            cancel_event=self.cancel_event,
            resources=self.config.resources,
        )
        with self._admission:
            self.metrics.query_started()
            start = time.perf_counter()
            try:
                table = thunk(options)
            except BudgetExceeded:
                self.metrics.query_finished(time.perf_counter() - start, "timeout")
                raise
            except QueryCancelled:
                self.metrics.query_finished(time.perf_counter() - start, "cancelled")
                raise
            except Exception:
                self.metrics.query_finished(time.perf_counter() - start, "error")
                raise
            elapsed = time.perf_counter() - start
            self.metrics.query_finished(elapsed, "ok")
        rows = list(table.rows)
        truncated = len(rows) > self.config.max_rows
        if truncated:
            rows = rows[: self.config.max_rows]
        return {
            "columns": list(table.schema.names),
            "rows": [list(row) for row in rows],
            "row_count": len(table),
            "truncated": truncated,
            "elapsed": round(elapsed, 6),
        }

    # -- graceful drain -----------------------------------------------------

    def drain(self, grace: float | None = None) -> bool:
        """Stop admitting queries; wait for in-flight work, then cancel.

        Returns True when the server drained cleanly within ``grace``
        seconds (default ``config.drain_grace``), False when the grace
        expired and the stragglers were cooperatively cancelled.  Safe
        to call more than once.
        """
        if grace is None:
            grace = self.config.drain_grace
        self.draining.set()
        deadline = self.clock.monotonic() + grace
        while self.clock.monotonic() < deadline:
            if self.metrics.snapshot()["in_flight"] == 0:
                return True
            self.clock.sleep(0.02)
        clean = self.metrics.snapshot()["in_flight"] == 0
        if not clean:
            self.cancel_event.set()
        return clean

    # wiring used by QueryServer
    def set_shutdown_callback(self, callback) -> None:
        self._shutdown_callback = callback


def _budget_of(payload: dict) -> float | None:
    """The caller's remaining time budget in seconds (None = unbounded)."""
    budget = payload.get("budget")
    if budget is None:
        return None
    if isinstance(budget, bool) or not isinstance(budget, (int, float)) or budget < 0:
        raise BadRequestError("'budget' must be a non-negative number of seconds")
    return float(budget)


def _shippable_era_history(database) -> list:
    """The era history a replication response should carry — pruned when
    the database can prove old reign boundaries are unreachable (see
    Database.pruned_era_history)."""
    pruner = getattr(database, "pruned_era_history", None)
    history = pruner() if callable(pruner) else getattr(database, "era_history", ())
    return [list(entry) for entry in history]


def _era_of(payload: dict) -> int:
    era = payload.get("era")
    if isinstance(era, bool) or not isinstance(era, int) or era < 1:
        raise BadRequestError("'era' must be a positive integer")
    return era


def _required_str(payload: dict, key: str) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or not value:
        raise BadRequestError(f"missing or non-string field {key!r}")
    return value


def _optional_str(payload: dict, key: str, default: str) -> str:
    value = payload.get(key, default)
    if not isinstance(value, str):
        raise BadRequestError(f"field {key!r} must be a string")
    return value


def _params_of(payload: dict):
    params = payload.get("params")
    if params is not None and not isinstance(params, (list, dict)):
        raise BadRequestError(
            "'params' must be an array (positional '?') or an object (named ':name')"
        )
    return params


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    service: QueryService  # injected by QueryServer

    # ThreadingHTTPServer logs every request to stderr by default; the
    # server's metrics endpoint replaces that.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _respond(self, status: int, body: dict) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self):  # noqa: N802 - stdlib naming
        status, body = self.service.handle("GET", self.path, {})
        self._respond(status, body)

    def do_POST(self):  # noqa: N802 - stdlib naming
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            error = BadRequestError(f"request body exceeds {MAX_BODY_BYTES} bytes")
            self._respond(400, {"error": error.as_dict()})
            return
        raw = self.rfile.read(length) if length else b""
        if raw:
            try:
                payload = json.loads(raw)
            except ValueError:
                error = BadRequestError("request body is not valid JSON")
                self._respond(400, {"error": error.as_dict()})
                return
            if not isinstance(payload, dict):
                error = BadRequestError("request body must be a JSON object")
                self._respond(400, {"error": error.as_dict()})
                return
        else:
            payload = {}
        status, body = self.service.handle("POST", self.path, payload)
        self._respond(status, body)


class QueryServer:
    """Owns the listening socket and the service; start/stop lifecycle."""

    def __init__(self, database, config: ServerConfig | None = None, service_factory=None):
        self.config = config or ServerConfig()
        factory = service_factory or QueryService
        self.service = factory(database, self.config)
        handler = type("BoundHandler", (_Handler,), {"service": self.service})
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._httpd.daemon_threads = True
        self.service.set_shutdown_callback(self._httpd.shutdown)
        self._thread: threading.Thread | None = None
        self._startup_thread: threading.Thread | None = None

    def _begin_startup(self) -> None:
        """Run the recovery phase (deferred database factory) off-thread
        so /health answers 503 ready=false while the WAL replays."""
        if self.service.ready.is_set() or self._startup_thread is not None:
            return
        self._startup_thread = threading.Thread(
            target=self.service.startup, name="repro-startup", daemon=True
        )
        self._startup_thread.start()

    def _checkpoint_on_exit(self) -> None:
        """Best-effort flush + checkpoint so a clean shutdown leaves a
        snapshot and an empty WAL tail (fast next startup).  Failures are
        tolerable: the WAL already holds everything a restart needs."""
        database = self.service._db
        checkpoint = getattr(database, "checkpoint", None)
        if checkpoint is None:
            return
        try:
            checkpoint()
        except Exception:
            pass

    @property
    def address(self) -> tuple[str, int]:
        """Bound (host, port) — resolves ``port=0`` to the actual port."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "QueryServer":
        """Serve in a daemon thread (tests, embedding); returns self."""
        self._begin_startup()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-server", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI ``serve`` command)."""
        self._begin_startup()
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def drain(self, grace: float | None = None) -> bool:
        """Graceful shutdown: refuse new queries, finish in-flight work
        (up to ``grace`` seconds), flush + checkpoint the durable store,
        then stop the HTTP loop and release the socket.  This is what the
        CLI's SIGTERM handler calls — clients see 503s they can retry,
        never dropped queries or a long WAL replay on the next boot."""
        clean = self.service.drain(grace)
        self._checkpoint_on_exit()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=5)
        return clean

    def stop(self) -> None:
        """Cancel in-flight queries, stop accepting, release the socket."""
        self.service.cancel_event.set()
        self.service.draining.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=5)
