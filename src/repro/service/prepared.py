"""Prepared statements: plan once, bind and execute many times.

A :class:`PreparedStatement` pairs a cached
:class:`~repro.optimizer.planner.PlannedQuery` template with the
database it was prepared against.  The SQL may use positional ``?`` or
named ``:name`` placeholders (one style per statement); each
:meth:`execute` call supplies concrete values, validated against the
statement's :class:`~repro.sql.parameters.ParamSpec` before anything
runs.  ``NULL`` arguments flow through the ordinary 3VL machinery — a
predicate like ``A1 = ?`` bound to ``None`` evaluates to UNKNOWN, so the
row is filtered exactly as ``A1 = NULL`` would be.

The underlying plan lives in the database's plan cache, so re-preparing
the same text is cheap, and a statement prepared before a bulk load is
transparently re-planned once statistics drift past the re-cost
threshold (the statement holds the *text*, not a pinned plan).
"""

from __future__ import annotations

from repro.engine import EvalOptions
from repro.sql.parameters import ParamSpec
from repro.storage.table import Table


class PreparedStatement:
    """A parameterized query template bound to a :class:`repro.Database`."""

    def __init__(self, database, sql: str, strategy: str = "auto"):
        from repro.sql.parser import parse

        self._db = database
        self.sql = sql
        self.strategy = strategy
        # Parse once and keep the tree: every execution passes it to the
        # plan cache, making the hot path a pure hash lookup + bind.
        # Planning eagerly also surfaces bind/planning errors at prepare
        # time and warms the cache for the first execution.
        self._statement = parse(sql)
        planned = database._cached_plan(sql, strategy, statement=self._statement)
        self._spec: ParamSpec = planned.param_spec

    @property
    def param_spec(self) -> ParamSpec:
        return self._spec

    def describe(self) -> dict:
        """Parameter shape: ``{"positional": n, "named": [...]}``."""
        return self._spec.describe()

    def execute(
        self,
        params=None,
        options: EvalOptions | None = None,
        at_lsn: int | None = None,
    ) -> Table:
        """Bind ``params`` (sequence or mapping) and run the template.

        The plan is fetched from the database's cache on every call, so
        executions after DDL or heavy DML on a dependency see a freshly
        costed plan instead of a stale one.

        Execution reads through an MVCC snapshot like
        :meth:`repro.Database.execute`: the current commit LSN is pinned
        for the duration (or ``at_lsn`` is used — the caller must hold
        that pin, e.g. a pinned server session).
        """
        planned = self._db._cached_plan(
            self.sql, self.strategy, statement=self._statement
        )
        self._spec = planned.param_spec
        from repro.storage.mvcc import SnapshotCatalog

        database = self._db
        handle = None
        if at_lsn is None:
            handle = database._snapshots.pin()
            lsn = handle.lsn
        else:
            lsn = at_lsn
        read_catalog = SnapshotCatalog(database.catalog, database._snapshots, lsn)
        try:
            return planned.execute(read_catalog, options, params=params)
        finally:
            if handle is not None:
                database._snapshots.unpin(handle)

    def explain(self) -> str:
        """Render the current plan for this template."""
        return self._db.explain(self.sql, strategy=self.strategy)

    def __repr__(self) -> str:
        return (
            f"PreparedStatement({self.sql!r}, strategy={self.strategy!r}, "
            f"params={self._spec.describe()})"
        )
