"""Server-side metrics: request counters and latency percentiles.

The server records one latency sample per completed query into a
bounded ring buffer (the window keeps the percentiles O(window) to
compute and naturally ages out warm-up noise).  Percentiles use the
nearest-rank method on the sorted window — exact for the window, no
interpolation surprises at the tail.

Everything is guarded by one lock; recording is a few appends and
increments, so contention is negligible next to query execution.
"""

from __future__ import annotations

import threading
import time
from collections import deque


class LatencyWindow:
    """A sliding window of the last ``size`` latency samples (seconds)."""

    def __init__(self, size: int = 1024):
        self._samples: deque[float] = deque(maxlen=size)

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)

    def percentile(self, fraction: float) -> float | None:
        """Nearest-rank percentile over the window; None when empty."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = max(1, round(fraction * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def snapshot(self) -> dict:
        if not self._samples:
            return {"count": 0}
        ordered = sorted(self._samples)

        def at(fraction: float) -> float:
            rank = max(1, round(fraction * len(ordered)))
            return round(ordered[min(rank, len(ordered)) - 1], 6)

        return {
            "count": len(ordered),
            "min": round(ordered[0], 6),
            "p50": at(0.50),
            "p95": at(0.95),
            "p99": at(0.99),
            "max": round(ordered[-1], 6),
        }


class ServerMetrics:
    """Counters + latency window behind a single lock."""

    def __init__(self, window: int = 1024):
        self._lock = threading.Lock()
        self._latency = LatencyWindow(window)
        self._started = time.time()
        self.requests_total = 0
        self.queries_ok = 0
        self.queries_failed = 0
        self.queries_timeout = 0
        self.queries_cancelled = 0
        self.rejected_overload = 0
        self.in_flight = 0

    def record_request(self) -> None:
        with self._lock:
            self.requests_total += 1

    def record_rejection(self) -> None:
        with self._lock:
            self.rejected_overload += 1

    def query_started(self) -> None:
        with self._lock:
            self.in_flight += 1

    def query_finished(self, seconds: float, outcome: str) -> None:
        """``outcome``: ok | error | timeout | cancelled."""
        with self._lock:
            self.in_flight -= 1
            self._latency.record(seconds)
            if outcome == "ok":
                self.queries_ok += 1
            elif outcome == "timeout":
                self.queries_timeout += 1
            elif outcome == "cancelled":
                self.queries_cancelled += 1
            else:
                self.queries_failed += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "uptime_seconds": round(time.time() - self._started, 3),
                "requests_total": self.requests_total,
                "queries_ok": self.queries_ok,
                "queries_failed": self.queries_failed,
                "queries_timeout": self.queries_timeout,
                "queries_cancelled": self.queries_cancelled,
                "rejected_overload": self.rejected_overload,
                "in_flight": self.in_flight,
                "latency": self._latency.snapshot(),
            }
