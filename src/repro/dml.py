"""DML execution: INSERT / DELETE / UPDATE against the catalog.

The query processor proper is read-only; this module implements the
mutation statements on top of it:

* ``INSERT … VALUES`` evaluates constant expressions (via the constant
  folder, so arithmetic and CASE over literals work) and appends;
* ``INSERT … SELECT`` runs the query through the normal planner;
* ``DELETE`` partitions the table with a **bypass selection** on the
  WHERE predicate — the negative stream (FALSE *or UNKNOWN*) is exactly
  the keep set, which sidesteps the classic trap of deleting with
  ``NOT p`` under three-valued logic;
* ``UPDATE`` numbers the rows (ν), partitions the same way, applies the
  assignments to the positive stream via map operators, and merges the
  streams back in original row order.

Subqueries are allowed anywhere a predicate or value expression is —
name resolution and evaluation reuse the ordinary translator and engine.
Statistics and secondary indexes for the touched table are refreshed
afterwards — INSERT through the incremental append path, DELETE/UPDATE
through a full rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra import expr as E
from repro.algebra import ops as L
from repro.engine import execute_plan
from repro.errors import TranslationError
from repro.optimizer import execute_sql
from repro.optimizer.simplify import simplify_expr
from repro.sql import ast
from repro.sql.translate import _Scope, _Translator
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.storage.wal import crash_point


@dataclass
class DmlResult:
    """Outcome of one DML statement."""

    operation: str
    table: str
    rows_affected: int

    def as_table(self) -> Table:
        from repro.storage.schema import Schema

        return Table(Schema(["rows_affected"]), [(self.rows_affected,)])


def execute_dml(stmt, catalog: Catalog, views=None) -> DmlResult:
    """Execute a parsed DML statement."""
    if isinstance(stmt, ast.InsertStmt):
        result = _execute_insert(stmt, catalog, views)
    elif isinstance(stmt, ast.DeleteStmt):
        result = _execute_delete(stmt, catalog, views)
    elif isinstance(stmt, ast.UpdateStmt):
        result = _execute_update(stmt, catalog, views)
    else:
        raise TranslationError(f"not a DML statement: {type(stmt).__name__}")
    # Crash boundary for the recovery tests: the mutation is applied in
    # memory but its WAL record (written by the Database facade) is not,
    # so a process killed here must lose exactly this statement.
    crash_point("storage.dml.apply")
    return result


# ---------------------------------------------------------------------------
# INSERT
# ---------------------------------------------------------------------------


def _execute_insert(stmt: ast.InsertStmt, catalog: Catalog, views) -> DmlResult:
    table = catalog.table(stmt.table)
    positions = _column_positions(table, stmt.columns)

    if stmt.query is not None:
        result = execute_sql_rows(stmt.query, catalog, views)
        if result and len(result[0]) != len(positions):
            raise TranslationError(
                f"INSERT expects {len(positions)} columns, query returns "
                f"{len(result[0])}"
            )
        new_rows = [_scatter(row, positions, len(table.schema)) for row in result]
    else:
        new_rows = []
        for value_row in stmt.values:
            if len(value_row) != len(positions):
                raise TranslationError(
                    f"INSERT expects {len(positions)} values per row, got "
                    f"{len(value_row)}"
                )
            constants = tuple(_constant_value(expr) for expr in value_row)
            new_rows.append(_scatter(constants, positions, len(table.schema)))

    start = len(table.rows)
    table.extend(new_rows)
    # Indexes fold the appended tail in incrementally; rows below
    # ``start`` are untouched by an INSERT.
    catalog.note_appends(stmt.table, start)
    catalog.analyze(stmt.table)
    return DmlResult("insert", stmt.table, len(new_rows))


def execute_sql_rows(query, catalog: Catalog, views) -> list:
    """Run a parsed query statement and return its raw rows."""
    from repro.optimizer.joins import optimize_joins
    from repro.sql.translate import translate

    translation = translate(query, catalog, views)
    plan = optimize_joins(translation.plan, catalog)
    return execute_plan(plan, catalog).rows


def _column_positions(table: Table, columns) -> list[int]:
    if not columns:
        return list(range(len(table.schema)))
    positions = []
    lower_names = {name.lower(): index for index, name in enumerate(table.schema.names)}
    for column in columns:
        if column.lower() not in lower_names:
            raise TranslationError(
                f"table {table.name!r} has no column {column!r}"
            )
        positions.append(lower_names[column.lower()])
    if len(set(positions)) != len(positions):
        raise TranslationError("duplicate column in INSERT column list")
    return positions


def _scatter(values, positions, arity) -> tuple:
    row = [None] * arity
    for value, position in zip(values, positions):
        row[position] = value
    return tuple(row)


def _constant_value(expr_node: ast.Node):
    """Evaluate a constant AST expression (folding handles arithmetic)."""
    translator = _Translator(Catalog(), {})
    scope = _Scope(None)
    try:
        expression = translator.translate_expr(expr_node, scope)
    except Exception as error:
        raise TranslationError(f"VALUES expressions must be constant: {error}")
    folded = simplify_expr(expression)
    if not isinstance(folded, E.Literal):
        raise TranslationError(
            f"VALUES expression {folded.sql()} is not constant"
        )
    return folded.value


# ---------------------------------------------------------------------------
# DELETE / UPDATE
# ---------------------------------------------------------------------------


def _dml_context(table_name: str, catalog: Catalog, views):
    """(translator, scope, numbered scan plan, sequence attr) for a table."""
    translator = _Translator(catalog, views)
    table = catalog.table(table_name)
    scope = _Scope(None)
    qualifier = translator.table_counter.next("q")
    scope.add_table(table_name, qualifier, table.schema.names)
    scan = L.Scan(table_name, table.schema.qualify(qualifier), qualifier)
    return translator, scope, scan


def _execute_delete(stmt: ast.DeleteStmt, catalog: Catalog, views) -> DmlResult:
    table = catalog.table(stmt.table)
    if stmt.where is None:
        affected = len(table)
        # Swap in a fresh list instead of clearing in place: MVCC
        # snapshots pinned at older LSNs keep the old list alive by
        # reference (see repro.storage.mvcc).
        table.rows = []
        table.invalidate()
        catalog.refresh_indexes(stmt.table)
        catalog.analyze(stmt.table)
        return DmlResult("delete", stmt.table, affected)

    translator, scope, scan = _dml_context(stmt.table, catalog, views)
    predicate = translator.translate_expr(stmt.where, scope)
    bypass = L.BypassSelect(scan, predicate)
    keep = execute_plan(bypass.negative, catalog).rows
    affected = len(table) - len(keep)
    # New list, not in-place splice: older MVCC versions reference the
    # previous list and must keep seeing the pre-statement rows.
    table.rows = list(keep)
    table.invalidate()
    catalog.refresh_indexes(stmt.table)
    catalog.analyze(stmt.table)
    return DmlResult("delete", stmt.table, affected)


def _execute_update(stmt: ast.UpdateStmt, catalog: Catalog, views) -> DmlResult:
    table = catalog.table(stmt.table)
    translator, scope, scan = _dml_context(stmt.table, catalog, views)

    arity = len(table.schema)
    lower_names = {name.lower(): index for index, name in enumerate(table.schema.names)}
    assignment_positions = []
    assignment_exprs = []
    for column, value_node in stmt.assignments:
        if column.lower() not in lower_names:
            raise TranslationError(f"table {stmt.table!r} has no column {column!r}")
        assignment_positions.append(lower_names[column.lower()])
        assignment_exprs.append(translator.translate_expr(value_node, scope))
    if len(set(assignment_positions)) != len(assignment_positions):
        raise TranslationError("duplicate column in UPDATE SET list")

    sequence = "dml.seq"
    numbered = L.Numbering(scan, sequence)
    predicate = (
        translator.translate_expr(stmt.where, scope) if stmt.where is not None else E.TRUE
    )
    bypass = L.BypassSelect(numbered, predicate)

    # Evaluate all assignment values against the *old* row (SQL
    # semantics: SET a = b, b = a swaps), then splice them in.
    update_plan: L.Operator = bypass.positive
    for index, expression in enumerate(assignment_exprs):
        update_plan = L.Map(update_plan, f"dml.new{index}", expression)
    updated_rows = execute_plan(update_plan, catalog).rows
    kept_rows = execute_plan(bypass.negative, catalog).rows

    merged: list[tuple] = []
    value_count = len(assignment_exprs)
    for row in updated_rows:
        base = list(row[:arity])
        new_values = row[arity + 1 : arity + 1 + value_count]
        for position, value in zip(assignment_positions, new_values):
            base[position] = value
        merged.append((row[arity], tuple(base)))  # (sequence, new row)
    for row in kept_rows:
        merged.append((row[arity], tuple(row[:arity])))
    merged.sort(key=lambda pair: pair[0])

    # New list, not in-place splice: older MVCC versions reference the
    # previous list and must keep seeing the pre-statement rows.
    table.rows = [row for _, row in merged]
    table.invalidate()
    catalog.refresh_indexes(stmt.table)
    catalog.analyze(stmt.table)
    return DmlResult("update", stmt.table, len(updated_rows))
