"""Automatic primary failover: health checks, election, fenced promotion.

The :class:`ClusterCoordinator` closes the loop the rest of the
replication stack leaves open: the WAL-shipping primary/replica pair
(``repro.replication.replica``) keeps followers current and the routing
client (``repro.replication.routing``) splits reads from writes, but
when the primary dies someone must *decide* — pick a successor, fence
the corpse, and repoint the survivors.  That someone is this module.

One coordinator watches a fixed node set.  Each round it probes every
node's ``/replication/topology`` and:

1. **adopts** the highest fencing era it sees anywhere (eras are the
   cluster's logical clock; a coordinator restarted mid-failover, or one
   whose promote response was lost, re-learns the truth from the nodes);
2. counts consecutive **leader misses**; at ``failure_threshold`` it
   runs a **failover**: among reachable, unbroken, unfenced replicas it
   elects the most-caught-up (highest ``applied_lsn``, ties broken by
   lowest URL — deterministic) and promotes it with ``era + 1``;
3. **polices** the rest of the topology: an unfenced node still claiming
   the primary role at an older era is demoted (fenced in place), and a
   replica following the wrong leader or armed with an older era is
   repointed at the current one.

Split-brain prevention does not rest on the coordinator being alive or
unique — it rests on the **fencing era**:

* promotion writes the new era as a WAL control record on the winner
  *before* any client write is acknowledged under it;
* every node that learns of era N (from the coordinator, from a request
  payload, or from the stream) refuses writes and streams from era < N;
* a deposed primary that never heard anything still self-fences on the
  first era-carrying write it sees (``NOT_PRIMARY``), so at most the
  writes it acknowledged while truly isolated — writes era N's quorum
  never saw — are lost, and its rejoin truncates exactly that suffix.

Fault sites (see ``repro.faults``): ``replication.failover.health``
makes a probe fail (the node looks down), ``replication.failover.promote``
fails the promotion RPC, ``replication.failover.demote`` fails the
demote/repoint policing RPCs.  All three are used by the chaos tests to
prove detection, election, and policing each tolerate transient loss.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.errors import InjectedFault, ReproError
from repro.faults import injector_from_env
from repro.service.client import ServiceClient
from repro.service.resilience import CircuitBreaker, RetryPolicy
from repro.sim.clock import SYSTEM_CLOCK, Clock
from repro.sim.transport import Transport

#: Fault site: a topology probe fails (the node appears down this round).
SITE_FAILOVER_HEALTH = "replication.failover.health"
#: Fault site: the promotion RPC to the elected replica fails.
SITE_FAILOVER_PROMOTE = "replication.failover.promote"
#: Fault site: a policing RPC (demote a stale primary / repoint a
#: replica) fails; policing retries next round.
SITE_FAILOVER_DEMOTE = "replication.failover.demote"


@dataclass(frozen=True)
class CoordinatorConfig:
    """Tunables for one cluster coordinator."""

    #: Base URLs of every node in the replica set (primary + replicas).
    nodes: tuple[str, ...]
    #: Seconds between health-check rounds in :meth:`ClusterCoordinator.run`.
    health_interval: float = 0.5
    #: Consecutive rounds the leader must miss before a failover fires.
    #: Probes are cheap and the threshold is what separates "one dropped
    #: packet" from "the primary is gone" — 3 at the default interval
    #: means ~1.5s of sustained silence.
    failure_threshold: int = 3
    #: HTTP timeout of each probe/promote/demote RPC.
    http_timeout: float = 5.0

    def __post_init__(self):
        if len(self.nodes) < 2:
            raise ValueError("a coordinator needs at least two nodes to fail over between")
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")


@dataclass
class NodeView:
    """One probe's worth of what a node said about itself."""

    url: str
    role: str
    era: int
    fenced: bool
    fenced_era: int
    applied_lsn: int
    leader_url: str | None
    broken: str | None = None
    raw: dict = field(default_factory=dict)

    @classmethod
    def from_topology(cls, url: str, body: dict) -> "NodeView":
        return cls(
            url=url,
            role=str(body.get("role", "")),
            era=int(body.get("era", 0)),
            fenced=bool(body.get("fenced", False)),
            fenced_era=int(body.get("fenced_era", 0)),
            applied_lsn=int(body.get("applied_lsn", 0)),
            leader_url=body.get("leader_url"),
            broken=body.get("broken"),
            raw=body,
        )


class ClusterCoordinator:
    """Health-checks a replica set and drives fenced failover.

    ``on_event`` (optional callable) receives one short string per
    noteworthy action (failover fired, node promoted/demoted/repointed)
    — the CLI prints these; tests assert on :attr:`events` directly.
    """

    def __init__(
        self,
        config: CoordinatorConfig,
        on_event=None,
        clock: Clock | None = None,
        transport: Transport | None = None,
    ):
        self.config = config
        self.on_event = on_event
        self._clock = clock or SYSTEM_CLOCK
        # max_attempts=1: the coordinator's own round cadence is the
        # retry loop; a probe that fails simply counts as a miss.  The
        # breaker must not rest either: the miss counter is already the
        # failure detector, and a resting breaker would keep reporting a
        # healed node as down for its whole reset timeout — delaying
        # both failover (probes of live candidates fail fast) and
        # policing (a revived stale primary stays undemoted, still
        # acking writes the new reign will disown).
        self._clients = {
            url.rstrip("/"): ServiceClient(
                url,
                timeout=config.http_timeout,
                retry_policy=RetryPolicy(max_attempts=1),
                breaker=CircuitBreaker(reset_timeout=0.0, clock=self._clock.monotonic),
                clock=self._clock,
                transport=transport,
            )
            for url in config.nodes
        }
        #: Best-known leader URL (starts unknown; the first round adopts
        #: whichever unfenced primary reigns at the newest era).
        self.leader_url: str | None = None
        #: Highest fencing era observed or installed anywhere.
        self.era = 0
        self._misses = 0
        self.events: list[str] = []
        self.counters = {
            "rounds": 0,
            "probe_failures": 0,
            "failovers": 0,
            "promotions": 0,
            "failed_promotions": 0,
            "demotions": 0,
            "repoints": 0,
        }

    # -- probing ------------------------------------------------------------

    def _probe(self, url: str, injector=None) -> NodeView | None:
        """One topology probe; None means the node looked down."""
        try:
            if injector is not None:
                injector.maybe_fail(SITE_FAILOVER_HEALTH)
            body = self._clients[url].replication_topology()
        except (InjectedFault, ReproError):
            self.counters["probe_failures"] += 1
            return None
        return NodeView.from_topology(url, body)

    def probe_all(self) -> dict[str, NodeView | None]:
        injector = injector_from_env()
        return {url: self._probe(url, injector) for url in self._clients}

    # -- one round ----------------------------------------------------------

    def step(self) -> dict[str, NodeView | None]:
        """One health-check round; returns the probe results.

        Adopt the newest era, count leader misses, fail over at the
        threshold, police stragglers.  Every sub-action is independent
        and idempotent, so a coordinator killed at any point between two
        rounds resumes correctly from what the nodes themselves report.
        """
        self.counters["rounds"] += 1
        views = self.probe_all()
        self._adopt(views)
        leader = self.leader_url
        leader_view = views.get(leader) if leader else None
        leader_alive = (
            leader_view is not None
            and not leader_view.fenced
            and leader_view.role == "primary"
        )
        if leader_alive:
            self._misses = 0
        else:
            self._misses += 1
            if self._misses >= self.config.failure_threshold:
                self._failover(views)
        self._police(views)
        return views

    def _adopt(self, views: dict[str, NodeView | None]) -> None:
        """Learn the cluster's newest era and its reigning leader.

        Eras never move backwards, and a *fenced* era counts too: a node
        fenced at era N proves era N exists even if its primary is not
        reachable this round.  This is what makes a restarted
        coordinator (or one whose promote RPC response was lost after
        the promote itself landed) converge instead of re-promoting at a
        stale era.
        """
        for view in views.values():
            if view is None:
                continue
            self.era = max(self.era, view.era, view.fenced_era)
        # The reigning leader: an unfenced primary at the newest era.
        best = None
        for view in views.values():
            if view is None or view.fenced or view.role != "primary":
                continue
            if view.era == self.era and (best is None or view.url < best.url):
                best = view
        if best is not None and best.url != self.leader_url:
            self.leader_url = best.url
            self._misses = 0
            self._event(f"leader is {best.url} (era {best.era})")

    def _failover(self, views: dict[str, NodeView | None]) -> None:
        """Elect the most-caught-up healthy replica and promote it.

        Election is deterministic: highest ``applied_lsn`` wins, ties
        broken by lowest URL.  The promotion installs ``era + 1`` on the
        winner as a durable WAL record — the commit point after which
        every other node's stream and write path is fenced off.
        """
        candidates = [
            view
            for view in views.values()
            if view is not None
            and view.role == "replica"
            and not view.fenced
            and not view.broken
        ]
        if not candidates:
            return
        candidates.sort(key=lambda view: (-view.applied_lsn, view.url))
        winner = candidates[0]
        new_era = self.era + 1
        self.counters["failovers"] += 1
        self._event(
            f"failover: leader {self.leader_url or '<unknown>'} missed"
            f" {self._misses} rounds; promoting {winner.url}"
            f" (applied_lsn {winner.applied_lsn}) to era {new_era}"
        )
        injector = injector_from_env()
        try:
            if injector is not None:
                injector.maybe_fail(SITE_FAILOVER_PROMOTE)
            body = self._clients[winner.url].replication_promote(new_era)
        except (InjectedFault, ReproError) as error:
            # The outcome is indeterminate: the promote may have landed
            # just before the response was lost.  The era is spent
            # either way — if the winner took it and then died before
            # the next probe round, re-promoting a *different* node at
            # the same number would put two divergent timelines on one
            # era (both acking the same (era, lsn) positions, and the
            # boundary math that dooms a deposed suffix can no longer
            # tell them apart).  Burn it; era numbers are cheap.  The
            # next round re-probes: if the promote landed, _adopt sees
            # the new leader; if not, the miss count is still past the
            # threshold and we try again at era + 1.
            self.era = max(self.era, new_era)
            self.counters["failed_promotions"] += 1
            self._event(f"promotion of {winner.url} failed: {error}")
            return
        self.counters["promotions"] += 1
        self.era = max(self.era, int(body.get("era", new_era)))
        self.leader_url = winner.url
        self._misses = 0
        self._event(f"promoted {winner.url} to era {self.era}")

    def _police(self, views: dict[str, NodeView | None]) -> None:
        """Fence stale primaries, repoint stale replicas.

        Idempotent hygiene that runs every round: a deposed primary that
        came back unfenced is told the new era (it fences in place and
        starts answering ``NOT_PRIMARY``), and a replica still tailing
        the old leader — or unarmed with the current era — is repointed
        so its stale-stream rejection arms immediately.

        The primary check is ``era <= self.era``, not ``<``: two nodes
        promoted to the *same* era (a concurrent-promotion race between
        two coordinators, or an operator's ``repro promote`` racing this
        one) must converge too.  The leader rule in :meth:`_adopt` is
        deterministic — lowest URL among unfenced primaries at the
        newest era — so every coordinator demotes the same loser, and
        the server accepts a same-era demotion as the race's tie-break.
        """
        leader = self.leader_url
        if leader is None or self.era == 0:
            return
        injector = injector_from_env()
        for view in views.values():
            if view is None or view.url == leader:
                continue
            try:
                if view.role == "primary" and not view.fenced and view.era <= self.era:
                    if injector is not None:
                        injector.maybe_fail(SITE_FAILOVER_DEMOTE)
                    self._clients[view.url].replication_demote(self.era, leader_url=leader)
                    self.counters["demotions"] += 1
                    self._event(f"demoted stale primary {view.url} (era {view.era} <= {self.era})")
                elif view.role == "replica" and (
                    self._normalize(view.leader_url) != leader or view.era < self.era
                ):
                    if injector is not None:
                        injector.maybe_fail(SITE_FAILOVER_DEMOTE)
                    self._clients[view.url].replication_repoint(leader, self.era)
                    self.counters["repoints"] += 1
                    self._event(f"repointed {view.url} at {leader} (era {self.era})")
            except (InjectedFault, ReproError):
                # Unreachable or transiently failing: next round retries.
                self.counters["probe_failures"] += 1

    @staticmethod
    def _normalize(url: str | None) -> str | None:
        return url.rstrip("/") if isinstance(url, str) else url

    # -- lifecycle ----------------------------------------------------------

    def run(self, stop_event: threading.Event | None = None) -> None:
        """Round loop for the CLI: step, sleep, repeat until stopped."""
        stop = stop_event or threading.Event()
        while not stop.is_set():
            self.step()
            self._clock.wait(stop, self.config.health_interval)

    def info(self) -> dict:
        """Counters plus current belief, for tests and the CLI."""
        info = {
            "leader_url": self.leader_url,
            "era": self.era,
            "misses": self._misses,
            "nodes": list(self._clients),
        }
        info.update(self.counters)
        return info

    def _event(self, message: str) -> None:
        self.events.append(message)
        if len(self.events) > 100:
            del self.events[: len(self.events) - 100]
        if self.on_event is not None:
            self.on_event(message)
