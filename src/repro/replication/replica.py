"""The replica: a WAL-shipping follower plus a read-only query server.

A :class:`ReplicationFollower` bootstraps from the primary's state
snapshot, then tails its WAL (long-polling ``POST /replication/wal``)
and replays every record through the **same public mutation paths crash
recovery uses** — ``execute`` for DML, ``register``/``create_view``/
``create_index`` for DDL — so index epochs, view epochs, and MVCC
versions advance on the replica exactly as they did live on the primary.

The follower's local store is itself a durable :class:`~repro.Database`,
and the two logs stay **record-for-record aligned** by construction: the
bootstrap writes the primary's state as a *local* snapshot at the
primary's LSN, so the local WAL bases there, and each applied primary
record logs exactly one local record.  ``applied_lsn`` is therefore just
the local ``wal_lsn`` — no side table, and a SIGKILLed replica resumes
from whatever its own recovery reports, torn tail discarded and all.
After every record the follower asserts the alignment; drift is fatal
(:class:`~repro.errors.ReplicationError`), never papered over.

:class:`ReplicaServer` wraps the follower and a :class:`QueryServer`
whose service subclass rejects writes (``READ_ONLY_REPLICA``) and
honors ``min_lsn`` read gates: wait up to ``lsn_wait`` for replication
to catch up, then answer — or fail with a retryable ``REPLICA_LAGGING``
the replica-set client uses to redirect.  See ``docs/replication.md``.
"""

from __future__ import annotations

import dataclasses
import os
import random
import threading
from dataclasses import dataclass

from repro import Database
from repro.errors import (
    BadRequestError,
    InjectedFault,
    NotPrimary,
    ReadOnlyReplica,
    ReplicaLagging,
    ReplicationError,
    ReproError,
    ServiceUnavailable,
)
from repro.faults import injector_from_env
from repro.replication.stream import SITE_STREAM_APPLY, decode_frames, frames_from_wire
from repro.service.client import ServiceClient
from repro.service.resilience import CircuitBreaker, RetryPolicy
from repro.sim.clock import SYSTEM_CLOCK
from repro.service.server import (
    WRITE_PREFIXES,
    QueryServer,
    QueryService,
    ServerConfig,
    _budget_of,
    _era_of,
    _required_str,
)
from repro.storage import Column, ColumnType, Schema, Table
from repro.storage.wal import (
    WAL_NAME,
    DurabilityConfig,
    LogRecord,
    list_snapshots,
    snapshot_path,
    write_snapshot,
)


@dataclass(frozen=True)
class ReplicaConfig:
    """Tunables for one replica (follower + server)."""

    #: Base URL of the primary query server to stream from.
    primary_url: str
    #: Local directory for the replica's own durable store.  Survives a
    #: kill: on restart the follower recovers it and resumes tailing
    #: from its last applied LSN instead of re-bootstrapping.
    data_dir: str
    #: Long-poll budget per tail request (the primary answers sooner
    #: when a record lands); must stay below ``http_timeout``.
    poll_wait: float = 5.0
    #: Records per tail batch.
    max_records: int = 512
    #: HTTP timeout of the follower's client.
    http_timeout: float = 30.0
    #: Sync mode of the local store.  ``"none"`` is safe here — a
    #: replica that loses buffered records simply refetches them, its
    #: recovery truncating the local log back to a clean prefix.
    sync: str = "none"
    #: How long an injected ``replication.stream.apply`` fault stalls
    #: the follower (it then proceeds — a slow follower, not a dead one).
    stall_seconds: float = 0.05
    #: Fetch-error backoff: start, and cap.
    retry_backoff: float = 0.05
    retry_backoff_max: float = 2.0
    #: Relative jitter applied to each backoff sleep (±50% by default),
    #: so a fleet of replicas does not reconnect in lockstep when the
    #: primary restarts.  The *doubling* stays deterministic; only the
    #: sleep is randomized.  0 disables.
    retry_jitter: float = 0.5


class ReplicationFollower:
    """Tails the primary's WAL into a local database; owns the loop.

    ``on_install`` (optional callable) is invoked with the database
    object whenever one is (re)built — at bootstrap and after a full
    resync — so an embedding server can swap what it serves from.
    """

    def __init__(
        self,
        config: ReplicaConfig,
        client: ServiceClient | None = None,
        on_install=None,
        rng: random.Random | None = None,
        clock=None,
        transport=None,
    ):
        self.config = config
        self._clock = clock or SYSTEM_CLOCK
        self._transport = transport
        # max_attempts=1: the follower loop is its own retry policy —
        # a fetch that fails backs off and refetches from applied_lsn,
        # which is always correct, so inner retries only hide lag.  The
        # same goes for the circuit breaker: a resting breaker would
        # keep the replication pipeline dark for its full reset timeout
        # after a partition heals, and every LSN the primary acks in
        # that dark window is one more acked write a failover can lose.
        # reset_timeout=0 keeps the fail-fast bookkeeping but always
        # admits the next (already rate-limited) poll.
        self.client = client or ServiceClient(
            config.primary_url,
            timeout=config.http_timeout,
            retry_policy=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(reset_timeout=0.0, clock=self._clock.monotonic),
            clock=self._clock,
            transport=transport,
        )
        self.on_install = on_install
        self._db: Database | None = None
        self._cond = threading.Condition()
        self._closed = False
        self._rng = rng or random.Random()
        #: Set (with a reason) when apply detected drift; the follower
        #: refuses further work rather than serve divergent state.
        self.broken: str | None = None
        #: Newest primary LSN observed in any response (lag = this
        #: minus applied_lsn).
        self.primary_lsn = 0
        #: The fencing era this follower believes in: the max of every
        #: era record it applied and every repoint it accepted.  A tail
        #: response from a *lower* era is a stale ex-primary's stream
        #: and is rejected, never applied.
        self.era = 0
        self.counters = {
            "batches": 0,
            "records_applied": 0,
            "torn_batches": 0,
            "resyncs": 0,
            "fetch_errors": 0,
            "apply_stalls": 0,
            "stale_stream_rejected": 0,
            "truncations": 0,
        }

    # -- lifecycle ----------------------------------------------------------

    @property
    def db(self) -> Database:
        database = self._db
        if database is None:
            raise ReplicationError("follower is not bootstrapped")
        return database

    @property
    def applied_lsn(self) -> int:
        """The local WAL LSN — aligned with the primary's by design."""
        database = self._db
        return 0 if database is None else database.wal_lsn

    def bootstrap(self) -> Database:
        """Open (or build) the local store; returns the database.

        A data directory with prior state is *recovered*, not wiped:
        the replica resumes streaming from its own last clean LSN —
        this is the kill-and-rejoin path.  An empty directory gets a
        full state snapshot from the primary.
        """
        if self._db is not None:
            return self._db
        if self._has_local_state():
            db = Database.open(self.config.data_dir, durability=self._durability_config())
            self._install(db)
            return db
        return self._resync()

    def _has_local_state(self) -> bool:
        directory = self.config.data_dir
        if os.path.exists(os.path.join(directory, WAL_NAME)):
            return True
        return bool(list_snapshots(directory))

    def _durability_config(self) -> DurabilityConfig:
        return DurabilityConfig(data_dir=self.config.data_dir, sync=self.config.sync)

    def _resync(self) -> Database:
        """Full re-bootstrap: primary state snapshot -> local checkpoint.

        Writing the fetched state as a *local* ``snapshot.<lsn>`` file
        and recovering from it is the whole alignment trick: recovery
        bases the fresh local WAL at exactly the primary's LSN.
        """
        body = self.client.replication_snapshot()
        snapshot_era = int(body.get("era", 0))
        if snapshot_era < self.era:
            self.counters["stale_stream_rejected"] += 1
            raise NotPrimary(
                self.era,
                message=(
                    f"bootstrap snapshot is from era {snapshot_era}, a stale"
                    f" primary; this follower is at era {self.era}"
                ),
            )
        lsn, state = body["lsn"], body["state"]
        old, self._db = self._db, None
        if old is not None:
            old.close()
        self._wipe_data_dir()
        os.makedirs(self.config.data_dir, exist_ok=True)
        write_snapshot(snapshot_path(self.config.data_dir, lsn), lsn, state)
        db = Database.open(self.config.data_dir, durability=self._durability_config())
        if db.wal_lsn != lsn:
            raise ReplicationError(
                f"bootstrap misalignment: local store recovered to LSN"
                f" {db.wal_lsn}, primary snapshot claimed {lsn}"
            )
        self._install(db)
        return db

    def _wipe_data_dir(self) -> None:
        """Remove replication state files (WAL + snapshots), keep the dir."""
        directory = self.config.data_dir
        try:
            entries = os.listdir(directory)
        except OSError:
            return
        for entry in entries:
            if entry == WAL_NAME or entry.startswith("snapshot.") or entry.endswith(".tmp"):
                try:
                    os.remove(os.path.join(directory, entry))
                except OSError:
                    pass

    def _install(self, db: Database) -> None:
        self._db = db
        # A recovered (or freshly bootstrapped) store may carry era
        # records from before the kill; never move backwards.
        self.era = max(self.era, getattr(db, "era", 0))
        if self.on_install is not None:
            self.on_install(db)
        with self._cond:
            self._cond.notify_all()

    def repoint(self, primary_url: str, era: int | None = None) -> None:
        """Follow a different primary (failover): swap client + config.

        ``era`` is the coordinator's view of the current era; adopting
        it arms the stale-stream rejection immediately — a late tail
        response from the deposed primary (lower era) is refused even
        before the new primary's era record arrives in-stream.
        """
        self.config = dataclasses.replace(self.config, primary_url=primary_url)
        self.client = ServiceClient(
            primary_url,
            timeout=self.config.http_timeout,
            retry_policy=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(reset_timeout=0.0, clock=self._clock.monotonic),
            clock=self._clock,
            transport=self._transport,
        )
        if era is not None:
            self.era = max(self.era, era)

    # -- the streaming loop -------------------------------------------------

    def step(self, wait: float | None = None) -> int:
        """One fetch+apply round; returns how many records were applied.

        Raises the client's transport/service errors on fetch problems
        (the caller backs off and calls again) and
        :class:`ReplicationError` on apply drift (fatal).
        """
        if self.broken is not None:
            raise ReplicationError(f"follower is broken: {self.broken}")
        db = self.bootstrap()
        body = self.client.replication_wal(
            from_lsn=db.wal_lsn,
            max_records=self.config.max_records,
            wait=self.config.poll_wait if wait is None else wait,
        )
        stream_era = int(body.get("era", 0))
        stream_era_lsn = int(body.get("era_lsn", 0))
        if stream_era < self.era:
            # A deposed primary's stream: refuse it wholesale.  Nothing
            # from an older era may be applied — not even records that
            # would happen to fit our LSN sequence, because they are the
            # divergent suffix the cluster already disowned.
            self.counters["stale_stream_rejected"] += 1
            raise NotPrimary(
                self.era,
                message=(
                    f"replication stream is from era {stream_era}, a stale"
                    f" primary; this follower is at era {self.era}"
                ),
            )
        boundaries = [(int(era), int(lsn)) for era, lsn in body.get("era_history", [])]
        if not boundaries and stream_era:
            boundaries = [(stream_era, stream_era_lsn)]
        db_era = getattr(db, "era", 0)
        if any(lsn and lsn <= db.wal_lsn and era > db_era for era, lsn in boundaries):
            # Rejoin-with-truncation: some reign's era record sits at an
            # LSN our log already reached, yet we never applied it — our
            # suffix past that point came from the old timeline (writes
            # the deposed primary acknowledged but never replicated).
            # Checking the full history (not just the newest era) covers
            # a node that slept through several failovers.  Truncate by
            # re-bootstrapping through the snapshot path.
            self.counters["truncations"] += 1
            self.counters["resyncs"] += 1
            self._resync()
            return 0
        self.primary_lsn = max(self.primary_lsn, int(body.get("last_lsn", 0)))
        if body.get("snapshot_required"):
            # A primary checkpoint truncated the records we still need
            # (we were down too long); start over from a state snapshot.
            self.counters["resyncs"] += 1
            self._resync()
            return 0
        frames = frames_from_wire(body.get("frames", ""))
        if not frames:
            return 0
        records, clean = decode_frames(frames, db.wal_lsn)
        if not clean:
            # Damaged in flight or deliberately torn by fault injection:
            # the clean prefix still applies; the rest is refetched.
            self.counters["torn_batches"] += 1
        if not records:
            return 0
        if self._closed:
            # Closed between fetch and apply (promotion in flight): the
            # batch must not land on what is about to be a new timeline.
            return 0
        self.counters["batches"] += 1
        injector = injector_from_env()
        for record in records:
            self._apply_record(db, record, injector)
        return len(records)

    def _apply_record(self, db: Database, record: LogRecord, injector=None) -> None:
        """Replay one primary record through the public mutation paths.

        Every branch below *logs* — that is the invariant that keeps the
        local WAL aligned with the primary's.  (``_apply_log_record``'s
        ``create_table`` branch deliberately skips logging for recovery;
        using it here would silently desynchronize the LSNs, which is
        why ``register`` is called instead.)  Unknown kinds from a newer
        primary are logged verbatim so the LSN advances even though this
        replica cannot interpret them.
        """
        if injector is not None:
            try:
                injector.maybe_fail(SITE_STREAM_APPLY)
            except InjectedFault:
                # A stalled follower, not a dead one: lag grows, the
                # min_lsn read gates feel it, and then we proceed.
                self.counters["apply_stalls"] += 1
                self._clock.sleep(self.config.stall_seconds)
        kind, data = record.kind, record.data
        if kind == "dml":
            db.execute(data["sql"])
        elif kind == "create_table":
            schema = Schema([Column(col, ColumnType(t)) for col, t in data["columns"]])
            table = Table(
                schema,
                [tuple(row) for row in data["rows"]],
                name=data.get("table_name") or data["name"],
            )
            db.register(table, data["name"])
        elif kind == "drop_table":
            db.drop_table(data["name"])
        elif kind == "create_view":
            db.create_view(data["name"], data["sql"])
        elif kind == "drop_view":
            db.drop_view(data["name"])
        elif kind == "create_index":
            db.create_index(data["name"], data["table"], data["column"], data["kind"])
        elif kind == "drop_index":
            db.drop_index(data["name"])
        elif kind == "era":
            # A reign boundary arriving in-stream: install it through
            # bump_era so it logs exactly one local record (keeping the
            # LSN alignment) and updates era/era_lsn/history.  A replay
            # of an era we already hold logs verbatim instead — the LSN
            # must advance either way.
            new_era = int(data["era"])
            with db._commit_lock:
                if new_era > db.era:
                    db.bump_era(new_era)
                else:
                    db._log_durable(kind, data)
            self.era = max(self.era, new_era)
        else:
            with db._commit_lock:
                db._log_durable(kind, data)
        self.counters["records_applied"] += 1
        if db.wal_lsn != record.lsn:
            self.broken = (
                f"applied-LSN drift: local log at {db.wal_lsn} after applying"
                f" primary record {record.lsn}"
            )
            raise ReplicationError(self.broken)
        with self._cond:
            self._cond.notify_all()

    def _backoff_delay(self, backoff: float) -> float:
        """One jittered sleep for the current backoff step.

        The exponential *schedule* (0.05, 0.1, 0.2, …) stays exactly
        deterministic; only each sleep is smeared by ±``retry_jitter``
        so a fleet of replicas does not hammer a restarting primary in
        lockstep.  Seedable via the constructor's ``rng`` for tests.
        """
        jitter = self.config.retry_jitter
        if jitter <= 0:
            return backoff
        return backoff * (1.0 + self._rng.uniform(-jitter, jitter))

    def run(self, stop_event: threading.Event | None = None) -> None:
        """Stream until stopped.  Fetch errors back off and refetch
        (refetching from ``applied_lsn`` is always correct); a stale
        stream (``NOT_PRIMARY``) backs off too — the coordinator will
        repoint us at the new leader; apply drift propagates after
        marking the follower broken."""
        backoff = self.config.retry_backoff
        while not self._closed and not (stop_event is not None and stop_event.is_set()):
            try:
                self.step()
            except NotPrimary:
                # The node we are tailing is a deposed primary; nothing
                # was applied.  Wait for a repoint rather than dying —
                # NotPrimary must be handled before its ReplicationError
                # base class, which is fatal here.
                delay = self._backoff_delay(backoff)
                if stop_event is not None:
                    self._clock.wait(stop_event, delay)
                else:
                    self._clock.sleep(delay)
                backoff = min(backoff * 2, self.config.retry_backoff_max)
                continue
            except ReplicationError:
                raise
            except ReproError:
                self.counters["fetch_errors"] += 1
                delay = self._backoff_delay(backoff)
                if stop_event is not None:
                    self._clock.wait(stop_event, delay)
                else:
                    self._clock.sleep(delay)
                backoff = min(backoff * 2, self.config.retry_backoff_max)
                continue
            backoff = self.config.retry_backoff

    def wait_for_lsn(self, lsn: int, timeout: float) -> int:
        """Block until ``applied_lsn >= lsn`` or ``timeout``; returns
        the applied LSN either way (the ``min_lsn`` read-gate wait)."""
        with self._cond:
            self._cond.wait_for(
                lambda: self.applied_lsn >= lsn or self._closed or self.broken,
                timeout=timeout,
            )
            return self.applied_lsn

    def info(self) -> dict:
        """The ``/metrics`` replication section of a replica."""
        applied = self.applied_lsn
        primary = max(self.primary_lsn, applied)
        info = {
            "role": "replica",
            "primary_url": self.config.primary_url,
            "applied_lsn": applied,
            "primary_lsn": primary,
            "lag_records": primary - applied,
            "era": self.era,
            "broken": self.broken,
        }
        info.update(self.counters)
        return info

    def close(self) -> None:
        """Stop the loop and wake every read-gate waiter (idempotent)."""
        self._closed = True
        with self._cond:
            self._cond.notify_all()


class ReplicaService(QueryService):
    """A read-only :class:`QueryService` gated on replication progress.

    Until promoted it refuses writes (``READ_ONLY_REPLICA``) and gates
    reads on the follower's applied LSN.  ``POST /replication/promote``
    flips it to a full primary: the follower is halted, the fencing era
    is bumped durably, and from then on every inherited primary code
    path (write gate, causality gate, stream serving) applies as-is.
    """

    def __init__(self, database, config: ServerConfig | None, follower: ReplicationFollower):
        super().__init__(database, config)
        self.follower = follower
        #: Flips exactly once, on a successful /replication/promote.
        self.promoted = False
        #: Callable invoked *before* the era bump to halt the follower
        #: thread (wired by :class:`ReplicaServer`); must return True
        #: once the thread is provably stopped.
        self.on_promote = None

    def _read_gate(self, payload: dict) -> None:
        """Honor ``min_lsn``/``era`` causal reads: wait, then serve or 503.

        The era check guards the timeline, not the position: a replica
        still tailing a deposed primary can hold *old-timeline* LSNs far
        past a new-timeline token, so an LSN-only gate would serve it
        stale-history data.  A read stamped with era N is refused
        (retryably) until this replica has both heard of era N *and*
        applied its boundary record — between a repoint (which arms
        ``follower.era``) and the in-stream era record (which advances
        ``db.era`` and truncates any divergent suffix first), the local
        log is still unproven.
        """
        min_lsn = payload.get("min_lsn")
        era = payload.get("era")
        if era is not None and (
            isinstance(era, bool) or not isinstance(era, int) or era < 0
        ):
            raise BadRequestError("'era' must be a non-negative integer")
        follower = self.follower
        if era:
            db_era = getattr(self._db, "era", 0) if self._db is not None else 0
            if era > max(db_era, follower.era):
                raise ReplicaLagging(
                    min_lsn or 0,
                    follower.applied_lsn,
                    message=(
                        f"read is stamped with era {era} but this replica only"
                        f" reached era {max(db_era, follower.era)}; it may still"
                        " be tailing a deposed primary"
                    ),
                )
            if follower.era > db_era:
                raise ReplicaLagging(
                    min_lsn or 0,
                    follower.applied_lsn,
                    message=(
                        f"replica is armed with era {follower.era} but has not"
                        f" applied its boundary record yet (local era {db_era});"
                        " the local log is unproven until the stream truncates"
                        " or confirms it"
                    ),
                )
        if min_lsn is None:
            return
        if isinstance(min_lsn, bool) or not isinstance(min_lsn, int) or min_lsn < 0:
            raise BadRequestError("'min_lsn' must be a non-negative integer")
        wait = payload.get("lsn_wait", 1.0)
        if isinstance(wait, bool) or not isinstance(wait, (int, float)) or wait < 0:
            raise BadRequestError("'lsn_wait' must be a non-negative number of seconds")
        wait = min(float(wait), self.config.max_wait_seconds)
        budget = _budget_of(payload)
        if budget is not None:
            # Deadline propagation: parking the gate longer than the
            # caller's remaining budget only manufactures a timeout the
            # client has already stopped waiting for.
            wait = min(wait, budget)
        applied = self.follower.applied_lsn
        if applied < min_lsn:
            applied = self.follower.wait_for_lsn(min_lsn, wait)
        if applied < min_lsn:
            raise ReplicaLagging(min_lsn, applied)

    def _role(self) -> str:
        return "primary" if self.promoted else "replica"

    def _write_gate(self, payload: dict) -> None:
        """Writes are refused outright until promotion; afterwards the
        inherited fencing-era gate takes over (split-brain guard)."""
        if not self.promoted:
            raise ReadOnlyReplica(
                "this server is a read-only replica; send writes to the primary"
            )
        super()._write_gate(payload)

    def _causality_gate(self, payload: dict) -> None:
        """A replica's ``min_lsn`` gate *waits* for replication before
        giving up; the primary-side fail-fast gate applies once promoted."""
        if self.promoted:
            super()._causality_gate(payload)
        else:
            self._read_gate(payload)

    def _query(self, payload: dict) -> dict:
        sql = payload.get("sql")
        if (
            not self.promoted
            and isinstance(sql, str)
            and sql.lstrip().lower().startswith(WRITE_PREFIXES)
        ):
            raise ReadOnlyReplica("this server is a read-only replica; send writes to the primary")
        return super()._query(payload)

    def _annotate(self, body: dict) -> dict:
        if self.promoted:
            return super()._annotate(body)
        # A replica's causality stamp is how far it has applied, not a
        # commit it performed (it performs none).
        body["applied_lsn"] = self.follower.applied_lsn
        era = max(getattr(self._db, "era", 0) if self._db is not None else 0, self.follower.era)
        if era:
            body["era"] = era
        return body

    def _topology(self) -> dict:
        if self.promoted:
            return super()._topology()
        follower = self.follower
        database = self._db
        applied = follower.applied_lsn
        return {
            "role": self._role(),
            "fenced": False,
            "fenced_era": 0,
            "era": max(getattr(database, "era", 0) if database is not None else 0, follower.era),
            "era_lsn": getattr(database, "era_lsn", 0) if database is not None else 0,
            "wal_lsn": applied,
            "applied_lsn": applied,
            "leader_url": follower.config.primary_url,
            "broken": follower.broken,
        }

    def _promote(self, payload: dict) -> dict:
        """Become the primary: halt the follower, bump the era durably.

        The era bump is the commit point — a promotion that fails before
        it leaves the node a plain replica.  The follower thread must be
        provably stopped first so no stale in-flight batch can land on
        the new timeline; if it is still draining a long poll the
        promotion fails retryably and the coordinator tries again.
        """
        if self.promoted:
            return super()._promote(payload)
        era = _era_of(payload)
        follower = self.follower
        if follower.broken is not None:
            raise ReplicationError(
                f"cannot promote a broken follower: {follower.broken}"
            )
        current = max(getattr(self.db, "era", 0), follower.era)
        if era <= current:
            raise ReplicationError(
                f"stale promotion: era {era} is not newer than this node's era {current}"
            )
        if self.on_promote is not None and not self.on_promote():
            raise ServiceUnavailable(
                "follower thread is still draining its last poll; retry promotion"
            )
        follower.close()
        follower.era = max(follower.era, era)
        database = self.db
        database.bump_era(era)
        self.promoted = True
        with self._cluster_lock:
            self._fenced = False
            self._fenced_era = 0
            self._leader_url = self.config.advertise_url
        return {
            "promoted": True,
            "role": self._role(),
            "era": database.era,
            "era_lsn": database.era_lsn,
            "applied_lsn": database.wal_lsn,
        }

    def _repoint(self, payload: dict) -> dict:
        """Follow a different primary (the coordinator heals topology)."""
        if self.promoted:
            return super()._repoint(payload)
        leader_url = _required_str(payload, "leader_url")
        era = _era_of(payload)
        follower = self.follower
        if era < follower.era:
            raise ReplicationError(
                f"stale repoint: era {era} is behind this follower's era {follower.era}"
            )
        follower.repoint(leader_url, era)
        return {"repointed": True, "leader_url": leader_url, "era": follower.era}

    def _metrics_body(self) -> dict:
        body = super()._metrics_body()
        if not self.promoted:
            body["replication"] = self.follower.info()
        return body


class ReplicaServer:
    """One process's worth of replica: follower thread + HTTP server.

    The server starts immediately and reports ``ready: false`` while the
    bootstrap (snapshot fetch or local recovery) runs on the startup
    thread — the same deferred-database machinery the primary uses for
    WAL replay.  After a resync the follower swaps the served database
    through ``on_install``.
    """

    def __init__(self, config: ReplicaConfig, server_config: ServerConfig | None = None):
        self.config = config
        self.follower = ReplicationFollower(config, on_install=self._install)
        self.server = QueryServer(
            self._startup,
            server_config or ServerConfig(),
            service_factory=self._make_service,
        )
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _make_service(self, database, config: ServerConfig) -> ReplicaService:
        service = ReplicaService(database, config, self.follower)
        service.on_promote = self._halt_follower
        return service

    def _startup(self) -> Database:
        return self.follower.bootstrap()

    def _install(self, db: Database) -> None:
        self.server.service._db = db

    @property
    def url(self) -> str:
        return self.server.url

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    def start(self) -> "ReplicaServer":
        self.server.start()
        self._thread = threading.Thread(target=self._follow, name="repro-replication", daemon=True)
        self._thread.start()
        return self

    def _halt_follower(self) -> bool:
        """Stop the streaming loop for good; True once provably stopped.

        The promotion prerequisite: the follower thread may be mid-way
        through a long poll against the (dead) old primary, and a batch
        it fetched before the era bump must never land on the new
        timeline.  ``close()`` makes the loop exit after its current
        step; the join bounds how long a promotion request waits for it.
        """
        self._stop.set()
        self.follower.close()
        thread = self._thread
        if thread is None or thread is threading.current_thread():
            return True
        thread.join(timeout=10.0)
        return not thread.is_alive()

    def _follow(self) -> None:
        service = self.server.service
        # Event-driven hand-off: park on startup_finished (set on
        # success, failure, and stop()) instead of polling ``ready`` at
        # 50 Hz — a parked replica burns no CPU while the primary-side
        # bootstrap or local recovery runs.
        service.startup_finished.wait()
        if (
            self._stop.is_set()
            or service.startup_error is not None
            or not service.ready.is_set()
        ):
            return
        try:
            self.follower.run(self._stop)
        except ReplicationError:
            # Recorded in follower.broken and surfaced via /metrics; the
            # server keeps answering reads at its last consistent LSN.
            pass

    def serve_forever(self) -> None:
        """Follower on a daemon thread, HTTP on the calling thread (CLI)."""
        self._thread = threading.Thread(target=self._follow, name="repro-replication", daemon=True)
        self._thread.start()
        self.server.serve_forever()

    def stop(self) -> None:
        self._stop.set()
        self.follower.close()
        # Wake a _follow thread still parked on the startup hand-off
        # (stop before bootstrap finished, e.g. an unreachable primary).
        self.server.service.startup_finished.set()
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=5)
        self.server.stop()
        database = self.follower._db
        if database is not None:
            database.close()
