"""The replication wire format: WAL frames over JSON, CRC-checked twice.

There is deliberately no new framing here.  The primary streams the raw
bytes of its write-ahead log — the same length-prefixed, CRC32-checksummed
records recovery scans — base64-armored inside a JSON body.  The follower
decodes them with the *same* validation scan the crash-recovery path uses
(:func:`repro.storage.wal._scan_frames`), so a batch damaged in flight, a
torn tail served mid-append, or an injected cut all degrade identically:
the clean prefix applies, the damaged suffix is discarded and refetched.

Fault sites on the streaming path (see :mod:`repro.faults`):

==============================  ==========================================
``replication.stream.serve``    primary side, before answering a
                                snapshot/tail request (disconnects, 503s)
``replication.stream.torn``     primary side, after reading the tail —
                                the batch is cut mid-frame before serving
``replication.stream.apply``    follower side, before applying one record
                                (a stalled follower: delay, then proceed)
==============================  ==========================================

The failover coordinator (:mod:`repro.replication.failover`) adds three
more sites on the control path: ``replication.failover.health`` (a
topology probe fails), ``replication.failover.promote`` (the promotion
RPC fails), and ``replication.failover.demote`` (a demote/repoint
policing RPC fails).  Tail responses also carry the primary's fencing
``era``/``era_lsn`` and full ``era_history`` so followers can reject a
stale stream and a rejoiner can detect a divergent suffix.
"""

from __future__ import annotations

import base64

# The scan is the recovery validator; replication reuses it on purpose —
# the wire format *is* the log format, torn data included.
from repro.storage.wal import LogRecord, _scan_frames

SITE_STREAM_SERVE = "replication.stream.serve"
SITE_STREAM_TORN = "replication.stream.torn"
SITE_STREAM_APPLY = "replication.stream.apply"


def decode_frames(frames: bytes, from_lsn: int) -> tuple[list[LogRecord], bool]:
    """Validate a received batch of raw WAL frames.

    ``from_lsn`` is the follower's applied LSN: the first frame must
    carry ``from_lsn + 1`` (dense LSNs, like the log itself).  Returns
    ``(records, clean)`` where ``records`` is the valid prefix and
    ``clean`` is False when trailing bytes failed validation — the
    follower applies the prefix and refetches the rest.
    """
    records, good_end = _scan_frames(frames, 0, from_lsn + 1)
    return records, good_end == len(frames)


def frames_to_wire(frames: bytes) -> str:
    """Base64-armor raw frames for a JSON response body."""
    return base64.b64encode(frames).decode("ascii")


def frames_from_wire(text: str) -> bytes:
    """Decode the base64 frame blob of a tail response (strict)."""
    return base64.b64decode(text.encode("ascii"), validate=True)
