"""repro.replication — WAL-shipping read replicas for the SQL server.

A primary server streams its write-ahead log (``POST
/replication/snapshot`` to bootstrap, ``POST /replication/wal`` to tail);
a :class:`~repro.replication.replica.ReplicaServer` replays that stream
through the same public mutation paths crash recovery uses and serves
read-only queries at its applied LSN.  Consistency is explicit: every
primary write response carries its commit LSN as a causality token, and
a replica read may demand ``min_lsn`` — wait briefly, then redirect —
so a client never reads staler than its own writes.

When the primary dies, a :class:`~repro.replication.failover.ClusterCoordinator`
detects the loss, elects the most-caught-up replica, and promotes it
under a **fencing era** (a monotonic term persisted as a WAL control
record) that fences the deposed primary out of the write path and lets
a rejoining one truncate its divergent WAL suffix.  See
``docs/replication.md`` for the design, the LSN-alignment argument, and
the failover protocol.

This package initializer stays import-light on purpose:
``repro.service.server`` imports :mod:`repro.replication.stream` at
module level, while :mod:`repro.replication.replica` imports the server
back — eager re-exports here would close that cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "SITE_STREAM_APPLY": "repro.replication.stream",
    "SITE_STREAM_SERVE": "repro.replication.stream",
    "SITE_STREAM_TORN": "repro.replication.stream",
    "SITE_FAILOVER_HEALTH": "repro.replication.failover",
    "SITE_FAILOVER_PROMOTE": "repro.replication.failover",
    "SITE_FAILOVER_DEMOTE": "repro.replication.failover",
    "decode_frames": "repro.replication.stream",
    "ClusterCoordinator": "repro.replication.failover",
    "CoordinatorConfig": "repro.replication.failover",
    "NodeView": "repro.replication.failover",
    "ReplicaConfig": "repro.replication.replica",
    "ReplicaServer": "repro.replication.replica",
    "ReplicationFollower": "repro.replication.replica",
    "ReplicaSetClient": "repro.replication.routing",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
