"""Read/write-split routing over a primary plus a set of read replicas.

:class:`ReplicaSetClient` composes the existing resilience pieces — one
:class:`~repro.service.client.ServiceClient` per endpoint, each with its
own circuit breaker — into a topology-aware client:

* **writes** go to the current primary; its response's ``commit_lsn`` is
  remembered as the session's causality token;
* **reads** prefer replicas, rotating among the ones believed fresh
  enough (lag-aware: each response's ``applied_lsn`` updates a local
  estimate) and carrying ``min_lsn = last written commit_lsn`` so a
  replica can never answer staler than this client's own writes;
* a replica that is lagging (``REPLICA_LAGGING``), unreachable, tripped
  its breaker, or shedding load is skipped for the next candidate, and
  the **primary is the final fallback** — a read never fails because
  replicas do when the primary could have answered it.

**Write failover** (the failover protocol's client side): every write
carries the newest fencing ``era`` this client has seen.  A write that
answers ``NOT_PRIMARY`` — or cannot reach the primary at all — triggers
leader re-discovery: adopt the leader the error names, or poll
``/replication/topology`` on every known endpoint and adopt the unfenced
primary with the newest ``(era, wal_lsn)``.  The write then retries
against the new leader, bounded by the endpoint count.  On a leader
change the causality token is clamped to the new leader's ``wal_lsn``:
writes the deposed primary acknowledged but never replicated are lost by
design (they were never durable on the surviving timeline), and a token
demanding them would make every future read fail.

Per-endpoint retry policies are ``max_attempts=1`` on purpose: this
layer *is* the retry policy, and failing over to a different endpoint
beats hammering the same one.
"""

from __future__ import annotations

import threading

from repro.errors import (
    AdmissionRejected,
    BudgetExceeded,
    CircuitOpen,
    NotPrimary,
    ReplicaLagging,
    ReproError,
    ServiceUnavailable,
)
from repro.service.client import QueryResult, ServiceClient
from repro.service.resilience import RetryPolicy
from repro.sim.clock import SYSTEM_CLOCK, Clock
from repro.sim.transport import Transport

#: Errors that mean "try the next endpoint", not "fail the read".
_FAILOVER_ERRORS = (ServiceUnavailable, CircuitOpen, AdmissionRejected)


class ReplicaSetClient:
    """A read/write-splitting client over one primary and N replicas."""

    def __init__(
        self,
        primary_url: str,
        replica_urls: tuple | list = (),
        timeout: float = 60.0,
        lsn_wait: float = 2.0,
        read_your_writes: bool = True,
        sleep=None,
        clock: Clock | None = None,
        transport: Transport | None = None,
        budget: float | None = None,
    ):
        self._timeout = timeout
        self._clock = clock or SYSTEM_CLOCK
        self._transport = transport
        self._sleep = sleep if sleep is not None else self._clock.sleep
        #: Default per-operation time budget (seconds) covering *all*
        #: failover attempts of one execute()/query() call; None keeps
        #: the historical unbounded behavior.
        self.budget = budget
        self._lock = threading.Lock()
        #: Every endpoint ever known, keyed by normalized URL.  Clients
        #: are cached so breaker state survives role changes.
        self._endpoints: dict[str, ServiceClient] = {}
        self.primary = self._client(primary_url)
        self.replicas = [self._client(url) for url in replica_urls]
        #: Per-replica freshness estimate (applied LSN from responses).
        self._applied = {client.base_url: 0 for client in self.replicas}
        self.lsn_wait = lsn_wait
        self.read_your_writes = read_your_writes
        #: The causality token: the commit LSN of this client's newest
        #: acknowledged write (0 = never wrote).
        self.last_commit_lsn = 0
        #: Newest fencing era observed in any response or error; rides
        #: on every write so a deposed primary self-fences on contact.
        self.era = 0
        self._rr = 0
        self.counters = {
            "primary_reads": 0,
            "replica_reads": 0,
            "writes": 0,
            "failovers": 0,
            "lagging_redirects": 0,
            "write_failovers": 0,
            "leader_changes": 0,
            "topology_refreshes": 0,
        }

    def _client(self, url: str) -> ServiceClient:
        url = url.rstrip("/")
        with self._lock:
            client = self._endpoints.get(url)
            if client is None:
                client = ServiceClient(
                    url,
                    timeout=self._timeout,
                    retry_policy=RetryPolicy(max_attempts=1),
                    sleep=self._sleep,
                    clock=self._clock,
                    transport=self._transport,
                )
                self._endpoints[url] = client
            return client

    def _deadline(self, budget: float | None) -> float | None:
        if budget is None:
            budget = self.budget
        return None if budget is None else self._clock.monotonic() + budget

    def _remaining(self, deadline: float | None) -> float | None:
        return None if deadline is None else deadline - self._clock.monotonic()

    # -- writes -------------------------------------------------------------

    def execute(
        self,
        sql: str,
        params=None,
        strategy: str = "auto",
        timeout: float | None = None,
        engine: str = "row",
        budget: float | None = None,
    ) -> QueryResult:
        """Run a write on the current primary; fail over if it is deposed.

        Bounded at ``len(endpoints) + 1`` attempts: enough to walk the
        whole cluster once after a re-discovery, never an infinite loop.
        ``budget`` additionally bounds the *whole* call in seconds: the
        remaining budget rides on each attempt (the server clamps its
        query timeout to it) and attempts stop once it is spent, so the
        routing retries and the per-endpoint retries cannot compound.
        Raises the last error when every attempt fails — with all nodes
        down that is a clean retryable ``SERVICE_UNAVAILABLE``.
        """
        deadline = self._deadline(budget)
        last_error = None
        attempts = len(self._endpoints) + 1
        for _ in range(attempts):
            remaining = self._remaining(deadline)
            if remaining is not None and remaining <= 0:
                break
            client = self.primary
            try:
                result = client.query(
                    sql,
                    params=params,
                    strategy=strategy,
                    timeout=timeout,
                    engine=engine,
                    era=self.era or None,
                    budget=remaining,
                )
            except NotPrimary as error:
                last_error = error
                with self._lock:
                    self.counters["write_failovers"] += 1
                    self.era = max(self.era, error.era)
                if error.leader_url and error.leader_url.rstrip("/") != client.base_url:
                    self._adopt_leader(error.leader_url)
                else:
                    self._rediscover()
                continue
            except _FAILOVER_ERRORS as error:
                last_error = error
                with self._lock:
                    self.counters["write_failovers"] += 1
                self._rediscover()
                continue
            with self._lock:
                self.counters["writes"] += 1
                if result.era:
                    self.era = max(self.era, result.era)
                if result.commit_lsn:
                    self.last_commit_lsn = max(self.last_commit_lsn, result.commit_lsn)
            return result
        if last_error is not None:
            raise last_error
        if deadline is not None and self._remaining(deadline) <= 0:
            raise BudgetExceeded(message="write budget exhausted before any attempt")
        raise ServiceUnavailable("replica set has no endpoints configured")

    # -- leader discovery ---------------------------------------------------

    def _adopt_leader(self, url: str) -> None:
        """Route writes at ``url`` from now on; drop it from read rotation."""
        client = self._client(url)
        with self._lock:
            if client is self.primary:
                return
            self.counters["leader_changes"] += 1
            old = self.primary
            self.primary = client
            self.replicas = [c for c in self.replicas if c is not client]
            self._applied.pop(client.base_url, None)
            # The deposed primary is *not* added to the read rotation:
            # until the coordinator repoints it, its state is suspect
            # (it may hold a divergent suffix).  Reads re-learn it once
            # a re-discovery sees it serving as a replica.
            self.replicas = [c for c in self.replicas if c is not old]
            self._applied.pop(old.base_url, None)

    def _rediscover(self) -> bool:
        """Poll every known endpoint's topology; adopt the current leader.

        The leader is the unfenced ``role == "primary"`` node with the
        newest ``(era, wal_lsn)``.  On a leader *change* the causality
        token is clamped to the new leader's ``wal_lsn`` — see the
        module docstring for why acked-but-unreplicated writes are lost.
        Returns True when a leader was found.
        """
        with self._lock:
            self.counters["topology_refreshes"] += 1
            clients = list(self._endpoints.values())
        views: dict[str, dict] = {}
        best = None
        for client in clients:
            try:
                body = client.replication_topology()
            except ReproError:
                continue
            views[client.base_url] = body
            if body.get("fenced") or body.get("role") != "primary":
                continue
            key = (int(body.get("era", 0)), int(body.get("wal_lsn", 0)))
            if best is None or key > best[0]:
                best = (key, client.base_url)
        if best is None:
            return False
        (era, wal_lsn), url = best
        changed = url != self.primary.base_url
        self._adopt_leader(url)
        with self._lock:
            self.era = max(self.era, era)
            if changed and self.last_commit_lsn > wal_lsn:
                self.last_commit_lsn = wal_lsn
            replicas = []
            applied = {}
            for client in clients:
                view = views.get(client.base_url)
                if view is None or client.base_url == url:
                    continue
                if view.get("role") == "replica" and not view.get("broken"):
                    replicas.append(client)
                    applied[client.base_url] = max(
                        self._applied.get(client.base_url, 0),
                        int(view.get("applied_lsn", 0)),
                    )
            if replicas or changed:
                self.replicas = replicas
                self._applied = applied
        return True

    # -- reads --------------------------------------------------------------

    def query(
        self,
        sql: str,
        params=None,
        strategy: str = "auto",
        timeout: float | None = None,
        engine: str = "row",
        min_lsn: int | None = None,
        budget: float | None = None,
    ) -> QueryResult:
        """Run a read, preferring replicas; never staler than ``min_lsn``.

        ``min_lsn`` defaults to this client's own last write (when
        ``read_your_writes`` is on), which is exactly the
        read-your-writes guarantee; pass an explicit token to read
        no-staler-than someone else's write instead.  The token is sent
        to the primary fallback too: during a failover window a deposed
        primary must fail the read (retryably) rather than serve an
        answer staler than the client's own write on the new timeline.
        ``budget`` bounds the whole call across every endpoint and both
        rounds — without it, a set of lagging replicas each waiting out
        ``lsn_wait`` turns one read into a retry storm.
        """
        if min_lsn is None:
            min_lsn = self.last_commit_lsn if self.read_your_writes else 0
        deadline = self._deadline(budget)
        last_error = None
        budget_spent = False
        for round_no in range(2):
            for client in self._read_order(min_lsn):
                remaining = self._remaining(deadline)
                if remaining is not None and remaining <= 0:
                    budget_spent = True
                    break
                is_primary = client is self.primary
                try:
                    # era stamps the read with the newest reign this
                    # client has seen: a node still on an older timeline
                    # must refuse rather than satisfy the LSN gate with
                    # divergent history (see the server's causality gate).
                    result = client.query(
                        sql,
                        params=params,
                        strategy=strategy,
                        timeout=timeout,
                        engine=engine,
                        min_lsn=min_lsn or None,
                        lsn_wait=None if is_primary else self.lsn_wait,
                        era=self.era or None,
                        budget=remaining,
                    )
                except ReplicaLagging as error:
                    with self._lock:
                        self.counters["lagging_redirects"] += 1
                        if not is_primary:
                            self._applied[client.base_url] = error.applied_lsn
                    last_error = error
                    continue
                except _FAILOVER_ERRORS as error:
                    with self._lock:
                        self.counters["failovers"] += 1
                    last_error = error
                    continue
                with self._lock:
                    key = "primary_reads" if is_primary else "replica_reads"
                    self.counters[key] += 1
                    if result.era:
                        self.era = max(self.era, result.era)
                    if result.applied_lsn is not None and not is_primary:
                        self._applied[client.base_url] = max(
                            self._applied.get(client.base_url, 0), result.applied_lsn
                        )
                return result
            # Exhausted every endpoint.  When the failure smells like a
            # topology change (unreachable primary, every replica behind
            # the token), one re-discovery buys one more round.
            if (
                round_no == 0
                and not budget_spent
                and isinstance(last_error, (*_FAILOVER_ERRORS, ReplicaLagging, NotPrimary))
                and self._rediscover()
            ):
                continue
            break
        if last_error is not None:
            raise last_error
        if budget_spent:
            raise BudgetExceeded(message="read budget exhausted before any attempt")
        raise ServiceUnavailable("replica set has no endpoints configured")

    def _read_order(self, min_lsn: int) -> list[ServiceClient]:
        """Fresh replicas round-robin, then stale ones freshest-first,
        then the primary as the fallback of last resort."""
        with self._lock:
            replicas = [c for c in self.replicas if c is not self.primary]
            fresh = [c for c in replicas if self._applied.get(c.base_url, 0) >= min_lsn]
            stale = sorted(
                (c for c in replicas if self._applied.get(c.base_url, 0) < min_lsn),
                key=lambda c: self._applied.get(c.base_url, 0),
                reverse=True,
            )
            if fresh:
                pivot = self._rr % len(fresh)
                self._rr += 1
                fresh = fresh[pivot:] + fresh[:pivot]
            primary = self.primary
        return [*fresh, *stale, primary]

    # -- introspection ------------------------------------------------------

    def info(self) -> dict:
        with self._lock:
            info = dict(self.counters)
            info["last_commit_lsn"] = self.last_commit_lsn
            info["era"] = self.era
            info["primary_url"] = self.primary.base_url
            info["replica_applied"] = dict(self._applied)
        return info
