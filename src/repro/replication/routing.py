"""Read/write-split routing over a primary plus a set of read replicas.

:class:`ReplicaSetClient` composes the existing resilience pieces — one
:class:`~repro.service.client.ServiceClient` per endpoint, each with its
own circuit breaker — into a topology-aware client:

* **writes** always go to the primary; its response's ``commit_lsn`` is
  remembered as the session's causality token;
* **reads** prefer replicas, rotating among the ones believed fresh
  enough (lag-aware: each response's ``applied_lsn`` updates a local
  estimate) and carrying ``min_lsn = last written commit_lsn`` so a
  replica can never answer staler than this client's own writes;
* a replica that is lagging (``REPLICA_LAGGING``), unreachable, tripped
  its breaker, or shedding load is skipped for the next candidate, and
  the **primary is the final fallback** — a read never fails because
  replicas do when the primary could have answered it.

Per-endpoint retry policies are ``max_attempts=1`` on purpose: this
layer *is* the retry policy, and failing over to a different endpoint
beats hammering the same one.
"""

from __future__ import annotations

import threading
import time

from repro.errors import (
    AdmissionRejected,
    CircuitOpen,
    ReplicaLagging,
    ServiceUnavailable,
)
from repro.service.client import QueryResult, ServiceClient
from repro.service.resilience import RetryPolicy

#: Errors that mean "try the next endpoint", not "fail the read".
_FAILOVER_ERRORS = (ServiceUnavailable, CircuitOpen, AdmissionRejected)


class ReplicaSetClient:
    """A read/write-splitting client over one primary and N replicas."""

    def __init__(
        self,
        primary_url: str,
        replica_urls: tuple | list = (),
        timeout: float = 60.0,
        lsn_wait: float = 2.0,
        read_your_writes: bool = True,
        sleep=time.sleep,
    ):
        policy = RetryPolicy(max_attempts=1)
        self.primary = ServiceClient(primary_url, timeout=timeout, retry_policy=policy, sleep=sleep)
        self.replicas = [
            ServiceClient(url, timeout=timeout, retry_policy=policy, sleep=sleep)
            for url in replica_urls
        ]
        #: Per-replica freshness estimate (applied LSN from responses).
        self._applied = {client.base_url: 0 for client in self.replicas}
        self.lsn_wait = lsn_wait
        self.read_your_writes = read_your_writes
        #: The causality token: the commit LSN of this client's newest
        #: acknowledged write (0 = never wrote).
        self.last_commit_lsn = 0
        self._rr = 0
        self._lock = threading.Lock()
        self.counters = {
            "primary_reads": 0,
            "replica_reads": 0,
            "writes": 0,
            "failovers": 0,
            "lagging_redirects": 0,
        }

    # -- writes -------------------------------------------------------------

    def execute(
        self,
        sql: str,
        params=None,
        strategy: str = "auto",
        timeout: float | None = None,
        engine: str = "row",
    ) -> QueryResult:
        """Run a write (or any statement) on the primary; remember its LSN."""
        result = self.primary.query(
            sql, params=params, strategy=strategy, timeout=timeout, engine=engine
        )
        with self._lock:
            self.counters["writes"] += 1
            if result.commit_lsn:
                self.last_commit_lsn = max(self.last_commit_lsn, result.commit_lsn)
        return result

    # -- reads --------------------------------------------------------------

    def query(
        self,
        sql: str,
        params=None,
        strategy: str = "auto",
        timeout: float | None = None,
        engine: str = "row",
        min_lsn: int | None = None,
    ) -> QueryResult:
        """Run a read, preferring replicas; never staler than ``min_lsn``.

        ``min_lsn`` defaults to this client's own last write (when
        ``read_your_writes`` is on), which is exactly the
        read-your-writes guarantee; pass an explicit token to read
        no-staler-than someone else's write instead.
        """
        if min_lsn is None:
            min_lsn = self.last_commit_lsn if self.read_your_writes else 0
        last_error = None
        for client in self._read_order(min_lsn):
            is_primary = client is self.primary
            try:
                if is_primary:
                    # The primary *is* the source of truth: every commit
                    # is already visible, so no gate is needed.
                    result = client.query(
                        sql,
                        params=params,
                        strategy=strategy,
                        timeout=timeout,
                        engine=engine,
                    )
                else:
                    result = client.query(
                        sql,
                        params=params,
                        strategy=strategy,
                        timeout=timeout,
                        engine=engine,
                        min_lsn=min_lsn or None,
                        lsn_wait=self.lsn_wait,
                    )
            except ReplicaLagging as error:
                with self._lock:
                    self.counters["lagging_redirects"] += 1
                    self._applied[client.base_url] = error.applied_lsn
                last_error = error
                continue
            except _FAILOVER_ERRORS as error:
                with self._lock:
                    self.counters["failovers"] += 1
                last_error = error
                continue
            with self._lock:
                key = "primary_reads" if is_primary else "replica_reads"
                self.counters[key] += 1
                if result.applied_lsn is not None and not is_primary:
                    self._applied[client.base_url] = max(
                        self._applied[client.base_url], result.applied_lsn
                    )
            return result
        if last_error is not None:
            raise last_error
        raise ServiceUnavailable("replica set has no endpoints configured")

    def _read_order(self, min_lsn: int) -> list[ServiceClient]:
        """Fresh replicas round-robin, then stale ones freshest-first,
        then the primary as the fallback of last resort."""
        with self._lock:
            fresh = [c for c in self.replicas if self._applied[c.base_url] >= min_lsn]
            stale = sorted(
                (c for c in self.replicas if self._applied[c.base_url] < min_lsn),
                key=lambda c: self._applied[c.base_url],
                reverse=True,
            )
            if fresh:
                pivot = self._rr % len(fresh)
                self._rr += 1
                fresh = fresh[pivot:] + fresh[:pivot]
        return [*fresh, *stale, self.primary]

    # -- introspection ------------------------------------------------------

    def info(self) -> dict:
        with self._lock:
            info = dict(self.counters)
            info["last_commit_lsn"] = self.last_commit_lsn
            info["replica_applied"] = dict(self._applied)
        return info
