"""Recursive-descent parser for the SQL subset.

Grammar sketch (precedence low → high)::

    statement  := select ((UNION [ALL] | INTERSECT | EXCEPT) select)*
    select     := [WITH name AS (statement) [, ...]]
                  SELECT [DISTINCT] items FROM tables [WHERE or_expr]
                  [GROUP BY expr_list] [HAVING or_expr]
                  [ORDER BY order_items] [LIMIT number]
    tables     := (table [AS alias] | (statement) alias) [, ...]
    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | predicate
    predicate  := additive ( cmp (additive | ANY/SOME/ALL (statement))
                 | [NOT] LIKE string | IS [NOT] NULL
                 | [NOT] IN (statement | expr_list)
                 | [NOT] BETWEEN additive AND additive )?
                 | EXISTS (statement)
    additive   := multiplicative ((+|-) multiplicative)*
    multiplicative := unary ((*|/) unary)*
    unary      := - unary | primary
    primary    := number | string | NULL | TRUE | FALSE | CASE ... END
                 | name[.name] | func([DISTINCT] args|*) | (statement) | (or_expr)

DML (via :func:`parse_any`)::

    insert     := INSERT INTO table [(cols)] (VALUES rows | statement)
    delete     := DELETE FROM table [WHERE or_expr]
    update     := UPDATE table SET col = additive [, ...] [WHERE or_expr]

DDL (via :func:`parse_any`)::

    create_idx := CREATE INDEX name ON table ( column ) [USING method]
    drop_idx   := DROP INDEX name

Every ``(`` decides between a nested query block and a parenthesised
expression by one-token lookahead for ``SELECT``/``WITH``.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import Token, tokenize

COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")


def parse(text: str):
    """Parse a query: SELECT or a UNION/INTERSECT/EXCEPT chain."""
    parser = _Parser(tokenize(text))
    stmt = parser.parse_statement()
    parser.skip_semicolon()
    parser.expect_eof()
    return stmt


def parse_any(text: str):
    """Parse any supported statement, including INSERT/DELETE/UPDATE."""
    parser = _Parser(tokenize(text))
    token = parser.current
    if token.is_keyword("insert"):
        stmt = parser.parse_insert()
    elif token.is_keyword("delete"):
        stmt = parser.parse_delete()
    elif token.is_keyword("update"):
        stmt = parser.parse_update()
    elif token.is_keyword("create"):
        stmt = parser.parse_create_index()
    elif token.is_keyword("drop"):
        stmt = parser.parse_drop_index()
    else:
        stmt = parser.parse_statement()
    parser.expect_eof()
    return stmt


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        self.position += 1
        return token

    def error(self, message: str) -> ParseError:
        token = self.current
        return ParseError(f"{message}, found {token.describe()}", token.line, token.column)

    def accept_keyword(self, *words: str) -> bool:
        if self.current.is_keyword(*words):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self.error(f"expected {word.upper()}")

    def accept_op(self, *ops: str) -> bool:
        if self.current.is_op(*ops):
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            raise self.error(f"expected {op!r}")

    def expect_ident(self) -> str:
        if self.current.kind != "ident":
            raise self.error("expected identifier")
        return self.advance().value

    def skip_semicolon(self) -> None:
        # Lexer has no ';' token; accept trailing whitespace only.  Kept
        # for interface symmetry if a ';' operator is ever added.
        return

    def expect_eof(self) -> None:
        if self.current.kind != "eof":
            raise self.error("expected end of input")

    # -- statements -------------------------------------------------------------

    def parse_statement(self):
        """A select, or a left-associative set-operation chain."""
        left = self.parse_select()
        while self.current.is_keyword("union", "intersect", "except"):
            op = self.advance().value
            all_flag = False
            if op == "union" and self.accept_keyword("all"):
                all_flag = True
            right = self.parse_select()
            left = ast.SetOpStmt(op, left, right, all_flag)
        return left

    # -- DML ---------------------------------------------------------------------

    def parse_insert(self) -> ast.InsertStmt:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self.expect_ident()
        columns: list[str] = []
        if self.current.is_op("("):
            self.advance()
            columns.append(self.expect_ident())
            while self.accept_op(","):
                columns.append(self.expect_ident())
            self.expect_op(")")
        if self.accept_keyword("values"):
            rows = [self._parse_value_row()]
            while self.accept_op(","):
                rows.append(self._parse_value_row())
            return ast.InsertStmt(table, tuple(columns), tuple(rows))
        query = self.parse_statement()
        return ast.InsertStmt(table, tuple(columns), (), query)

    def _parse_value_row(self) -> tuple:
        self.expect_op("(")
        values = [self.parse_additive()]
        while self.accept_op(","):
            values.append(self.parse_additive())
        self.expect_op(")")
        return tuple(values)

    def parse_delete(self) -> ast.DeleteStmt:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        table = self.expect_ident()
        where = None
        if self.accept_keyword("where"):
            where = self.parse_or()
        return ast.DeleteStmt(table, where)

    def parse_update(self) -> ast.UpdateStmt:
        self.expect_keyword("update")
        table = self.expect_ident()
        self.expect_keyword("set")
        assignments = [self._parse_assignment()]
        while self.accept_op(","):
            assignments.append(self._parse_assignment())
        where = None
        if self.accept_keyword("where"):
            where = self.parse_or()
        return ast.UpdateStmt(table, tuple(assignments), where)

    def _parse_assignment(self) -> tuple:
        column = self.expect_ident()
        self.expect_op("=")
        value = self.parse_additive()
        return (column, value)

    # -- DDL ---------------------------------------------------------------------

    def parse_create_index(self) -> ast.CreateIndexStmt:
        self.expect_keyword("create")
        self.expect_keyword("index")
        name = self.expect_ident()
        self.expect_keyword("on")
        table = self.expect_ident()
        self.expect_op("(")
        column = self.expect_ident()
        self.expect_op(")")
        method = "hash"
        # USING is not a reserved word; match the ident by value.
        if self.current.kind == "ident" and self.current.value == "using":
            self.advance()
            method = self.expect_ident()
        return ast.CreateIndexStmt(name, table, column, method)

    def parse_drop_index(self) -> ast.DropIndexStmt:
        self.expect_keyword("drop")
        self.expect_keyword("index")
        return ast.DropIndexStmt(self.expect_ident())

    def parse_select(self) -> ast.SelectStmt:
        ctes: list[tuple[str, ast.SelectStmt]] = []
        if self.accept_keyword("with"):
            while True:
                name = self.expect_ident()
                self.expect_keyword("as")
                self.expect_op("(")
                definition = self.parse_statement()
                self.expect_op(")")
                ctes.append((name, definition))
                if not self.accept_op(","):
                    break
        stmt = self._parse_select_body()
        if ctes:
            stmt = ast.SelectStmt(
                items=stmt.items, tables=stmt.tables, where=stmt.where,
                group_by=stmt.group_by, having=stmt.having,
                order_by=stmt.order_by, limit=stmt.limit,
                distinct=stmt.distinct, ctes=tuple(ctes),
            )
        return stmt

    def _parse_select_body(self) -> ast.SelectStmt:
        self.expect_keyword("select")
        distinct = bool(self.accept_keyword("distinct"))
        if self.accept_keyword("all") and distinct:
            raise self.error("cannot combine DISTINCT and ALL")

        items = [self.parse_select_item()]
        while self.accept_op(","):
            items.append(self.parse_select_item())

        self.expect_keyword("from")
        tables = [self.parse_table_ref()]
        while self.accept_op(","):
            tables.append(self.parse_table_ref())

        where = None
        if self.accept_keyword("where"):
            where = self.parse_or()

        group_by: list[ast.Node] = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by.append(self.parse_additive())
            while self.accept_op(","):
                group_by.append(self.parse_additive())

        having = None
        if self.accept_keyword("having"):
            having = self.parse_or()

        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by.append(self.parse_order_item())
            while self.accept_op(","):
                order_by.append(self.parse_order_item())

        limit = None
        if self.accept_keyword("limit"):
            token = self.current
            if token.kind != "number" or not isinstance(token.value, int):
                raise self.error("expected integer after LIMIT")
            limit = self.advance().value

        return ast.SelectStmt(
            items=tuple(items),
            tables=tuple(tables),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def parse_select_item(self) -> ast.SelectItem:
        if self.current.is_op("*"):
            self.advance()
            return ast.SelectItem(ast.Star())
        expr = self.parse_additive()
        # ``t.*`` is produced by parse_primary as Star(qualifier).
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.current.kind == "ident":
            alias = self.advance().value
        return ast.SelectItem(expr, alias)

    def parse_table_ref(self) -> ast.TableRef:
        if self.accept_op("("):
            query = self.parse_statement()
            self.expect_op(")")
            if self.accept_keyword("as"):
                alias = self.expect_ident()
            elif self.current.kind == "ident":
                alias = self.advance().value
            else:
                raise self.error("derived table requires an alias")
            return ast.TableRef("", alias, subquery=query)
        table = self.expect_ident()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.current.kind == "ident":
            alias = self.advance().value
        return ast.TableRef(table, alias)

    def parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_additive()
        ascending = True
        if self.accept_keyword("desc"):
            ascending = False
        else:
            self.accept_keyword("asc")
        return ast.OrderItem(expr, ascending)

    # -- boolean expressions -------------------------------------------------

    def parse_or(self) -> ast.Node:
        items = [self.parse_and()]
        while self.accept_keyword("or"):
            items.append(self.parse_and())
        if len(items) == 1:
            return items[0]
        return ast.BoolOp("or", tuple(items))

    def parse_and(self) -> ast.Node:
        items = [self.parse_not()]
        while self.accept_keyword("and"):
            items.append(self.parse_not())
        if len(items) == 1:
            return items[0]
        return ast.BoolOp("and", tuple(items))

    def parse_not(self) -> ast.Node:
        if self.accept_keyword("not"):
            return ast.UnaryOp("not", self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> ast.Node:
        if self.current.is_keyword("exists"):
            self.advance()
            self.expect_op("(")
            query = self.parse_statement()
            self.expect_op(")")
            return ast.ExistsOp(query)

        left = self.parse_additive()

        if self.current.is_op(*COMPARISONS):
            op = self.advance().value
            if self.current.is_keyword("any", "some", "all"):
                quantifier = "all" if self.advance().value == "all" else "any"
                self.expect_op("(")
                query = self.parse_statement()
                self.expect_op(")")
                return ast.QuantifiedOp(left, op, quantifier, query)
            right = self.parse_additive()
            return ast.BinaryOp(op, left, right)

        negated = bool(self.accept_keyword("not"))

        if self.accept_keyword("like"):
            token = self.current
            if token.kind != "string":
                raise self.error("expected string literal after LIKE")
            pattern = self.advance().value
            return ast.LikeOp(left, pattern, negated)

        if self.accept_keyword("between"):
            low = self.parse_additive()
            self.expect_keyword("and")
            high = self.parse_additive()
            return ast.BetweenOp(left, low, high, negated)

        if self.accept_keyword("in"):
            self.expect_op("(")
            if self.current.is_keyword("select", "with"):
                query = self.parse_statement()
                self.expect_op(")")
                return ast.InSubqueryOp(left, query, negated)
            values = [self.parse_additive()]
            while self.accept_op(","):
                values.append(self.parse_additive())
            self.expect_op(")")
            return ast.InListOp(left, tuple(values), negated)

        if self.accept_keyword("is"):
            is_negated = bool(self.accept_keyword("not"))
            self.expect_keyword("null")
            return ast.IsNullOp(left, is_negated)

        if negated:
            raise self.error("expected LIKE, BETWEEN or IN after NOT")
        return left

    # -- arithmetic -------------------------------------------------------------

    def parse_additive(self) -> ast.Node:
        left = self.parse_multiplicative()
        while self.current.is_op("+", "-"):
            op = self.advance().value
            right = self.parse_multiplicative()
            left = ast.BinaryOp(op, left, right)
        return left

    def parse_multiplicative(self) -> ast.Node:
        left = self.parse_unary()
        while self.current.is_op("*", "/"):
            op = self.advance().value
            right = self.parse_unary()
            left = ast.BinaryOp(op, left, right)
        return left

    def parse_unary(self) -> ast.Node:
        if self.accept_op("-"):
            return ast.UnaryOp("-", self.parse_unary())
        if self.accept_op("+"):
            return self.parse_unary()
        return self.parse_primary()

    # -- primaries --------------------------------------------------------------

    def parse_primary(self) -> ast.Node:
        token = self.current

        if token.kind == "number" or token.kind == "string":
            self.advance()
            return ast.Constant(token.value)

        if token.kind == "param":
            self.advance()
            return ast.Parameter(token.value)

        if token.is_keyword("null"):
            self.advance()
            return ast.Constant(None)
        if token.is_keyword("true"):
            self.advance()
            return ast.Constant(True)
        if token.is_keyword("false"):
            self.advance()
            return ast.Constant(False)

        if token.is_keyword("case"):
            return self.parse_case()

        # Aggregate keywords double as function names.
        if token.is_keyword("count", "sum", "avg", "min", "max"):
            name = self.advance().value
            return self.parse_call(name)

        if token.is_op("("):
            self.advance()
            if self.current.is_keyword("select", "with"):
                query = self.parse_statement()
                self.expect_op(")")
                return ast.Subquery(query)
            inner = self.parse_or()
            self.expect_op(")")
            return inner

        if token.kind == "ident":
            name = self.advance().value
            if self.current.is_op("("):
                return self.parse_call(name)
            if self.current.is_op("."):
                self.advance()
                if self.current.is_op("*"):
                    self.advance()
                    return ast.Star(qualifier=name)
                column = self.expect_ident()
                return ast.Name(column, qualifier=name)
            return ast.Name(name)

        raise self.error("expected expression")

    def parse_call(self, name: str) -> ast.Node:
        self.expect_op("(")
        distinct = bool(self.accept_keyword("distinct"))
        if self.current.is_op("*"):
            self.advance()
            self.expect_op(")")
            return ast.FuncCall(name, (ast.Star(),), distinct)
        if self.current.is_op(")"):
            self.advance()
            return ast.FuncCall(name, (), distinct)
        args = [self.parse_additive()]
        while self.accept_op(","):
            args.append(self.parse_additive())
        self.expect_op(")")
        return ast.FuncCall(name, tuple(args), distinct)

    def parse_case(self) -> ast.Node:
        self.expect_keyword("case")
        branches: list[tuple[ast.Node, ast.Node]] = []
        while self.accept_keyword("when"):
            condition = self.parse_or()
            self.expect_keyword("then")
            value = self.parse_additive()
            branches.append((condition, value))
        if not branches:
            raise self.error("CASE requires at least one WHEN branch")
        default = None
        if self.accept_keyword("else"):
            default = self.parse_additive()
        self.expect_keyword("end")
        return ast.CaseExpr(tuple(branches), default)
