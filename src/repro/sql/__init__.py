"""SQL front-end: lexer, parser, binder, canonical translation.

The subset covers everything the paper's queries need, and a bit more:

* ``SELECT [DISTINCT] items FROM tables [WHERE pred] [ORDER BY ...] [LIMIT n]``
* arbitrary boolean nesting of AND/OR/NOT in WHERE;
* scalar subqueries (``A1 = (SELECT MIN(x) FROM ...)``) anywhere an
  expression may occur, arbitrarily deeply nested and correlated;
* quantified table subqueries: ``[NOT] EXISTS``, ``[NOT] IN``,
  ``op ANY/SOME/ALL`` (technical-report extension);
* aggregate functions COUNT/SUM/AVG/MIN/MAX with DISTINCT and ``*``;
* ``LIKE``, ``IS [NOT] NULL``, ``IN (value list)``, ``CASE``, arithmetic.

:func:`translate` produces the paper's *canonical translation*: one
logical plan per query block; subqueries appear as nested algebraic
expressions inside selection subscripts.
"""

from repro.sql.parser import parse
from repro.sql.translate import translate, TranslationResult
from repro.sql.classify import classify, QueryClass, KimType, NestingStructure

__all__ = [
    "parse",
    "translate",
    "TranslationResult",
    "classify",
    "QueryClass",
    "KimType",
    "NestingStructure",
]
