"""Prepared-statement parameters: collection, validation, binding.

The lexer assigns every ``?`` its 0-based occurrence index and folds
``:name`` to lower case; the parser wraps both as :class:`ast.Parameter`
leaves.  This module walks a parsed statement (including every nested
query block and DML value list), derives its :class:`ParamSpec`, and
binds user-supplied arguments into the ``{key: value}`` mapping the
engines read from the execution context.

Binding is strict: positional statements require exactly as many values
as placeholders, named statements require exactly the referenced names —
a missing or unknown name raises :class:`~repro.errors.ParameterError`
rather than silently evaluating to NULL.  A bound NULL (Python ``None``)
is a first-class value with ordinary 3VL semantics: ``A1 = :x`` with
``x = NULL`` is UNKNOWN for every row, never an error (two-valued
reinterpretations of NULL comparisons are the caller's job, per Libkin's
"Handling SQL Nulls with Two-Valued Logic" discussion).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.errors import ParameterError
from repro.sql import ast


def format_key(key: object) -> str:
    """Human-readable spelling of a parameter key."""
    if isinstance(key, int):
        return f"?{key + 1}"
    return f":{key}"


def walk_statement(node: object) -> Iterator[ast.Node]:
    """Deep pre-order walk over *every* AST node of a statement.

    Unlike :meth:`ast.Node.walk`, this descends into nested query blocks
    (subqueries, EXISTS/IN/quantified operands, derived tables, CTEs,
    set operations) and DML value lists, so no placeholder is missed.
    """
    if isinstance(node, ast.Node):
        yield node
        for field in dataclasses.fields(node):  # all AST nodes are dataclasses
            yield from walk_statement(getattr(node, field.name))
    elif isinstance(node, (tuple, list)):
        for item in node:
            yield from walk_statement(item)


@dataclass(frozen=True)
class ParamSpec:
    """The parameter shape of one statement.

    Exactly one of ``positional`` / ``names`` is populated (a statement
    may use one placeholder style, not both).  ``keys`` preserves first
    occurrence order for display.
    """

    positional: int = 0
    names: tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.positional or self.names)

    def describe(self) -> dict:
        """JSON-friendly description (used by the server's /prepare)."""
        return {"positional": self.positional, "named": list(self.names)}

    @classmethod
    def of(cls, statement: object) -> "ParamSpec":
        """Derive the spec of a parsed statement; rejects mixed styles."""
        indices: set[int] = set()
        names: list[str] = []
        seen_names: set[str] = set()
        for node in walk_statement(statement):
            if not isinstance(node, ast.Parameter):
                continue
            if isinstance(node.key, int):
                indices.add(node.key)
            elif node.key not in seen_names:
                seen_names.add(node.key)
                names.append(node.key)
        if indices and names:
            raise ParameterError(
                "cannot mix positional (?) and named (:name) parameters "
                "in one statement"
            )
        return cls(positional=len(indices), names=tuple(names))

    # -- binding -----------------------------------------------------------

    def bind(self, params: Sequence | Mapping | None) -> dict | None:
        """Validate ``params`` against the spec; return the key→value map.

        Positional specs accept a sequence (exact arity); named specs
        accept a mapping over exactly the referenced names.  Statements
        without placeholders accept only ``None`` / empty collections.
        """
        if not self:
            if params:
                raise ParameterError(
                    "statement takes no parameters but values were supplied"
                )
            return None
        if params is None:
            raise ParameterError(
                f"statement requires parameters ({self._shape()}) but none "
                "were supplied"
            )
        if self.positional:
            if isinstance(params, Mapping):
                raise ParameterError(
                    "statement uses positional '?' parameters; pass a "
                    "sequence of values, not a mapping"
                )
            values = list(params)
            if len(values) != self.positional:
                raise ParameterError(
                    f"statement takes {self.positional} positional "
                    f"parameter(s), got {len(values)}"
                )
            return {index: value for index, value in enumerate(values)}
        if not isinstance(params, Mapping):
            raise ParameterError(
                "statement uses named ':name' parameters; pass a mapping "
                "of name to value"
            )
        bound = {str(key).lower(): value for key, value in params.items()}
        unknown = sorted(set(bound) - set(self.names))
        if unknown:
            raise ParameterError(
                f"unknown parameter name(s): {', '.join(unknown)}; "
                f"statement declares {self._shape()}"
            )
        missing = [name for name in self.names if name not in bound]
        if missing:
            raise ParameterError(
                "missing value(s) for parameter(s): "
                + ", ".join(format_key(name) for name in missing)
            )
        return bound

    def _shape(self) -> str:
        if self.positional:
            plural = "s" if self.positional != 1 else ""
            return f"{self.positional} positional placeholder{plural}"
        if self.names:
            return ", ".join(format_key(name) for name in self.names)
        return "no parameters"
