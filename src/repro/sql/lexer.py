"""A hand-written SQL lexer.

Produces a flat token list consumed by the recursive-descent parser.
Identifiers are case-folded to lower case; keywords are recognised
case-insensitively.  String literals use single quotes with ``''`` as the
escape; numbers are int or float literals.  ``--`` line comments and
``/* */`` block comments are skipped.

Prepared-statement placeholders lex as ``param`` tokens: ``?`` is
positional (the token value is the 0-based occurrence index) and
``:name`` is named (the value is the case-folded name).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LexError

KEYWORDS = frozenset(
    """
    select distinct from where and or not in like is null exists
    between case when then else end as order by asc desc limit
    union all any some intersect except group having count sum avg min max
    true false with insert into values delete update set
    create drop index on
    """.split()
)

#: Multi- and single-character operator tokens, longest first.
OPERATORS = ("<>", "<=", ">=", "!=", "=", "<", ">", "(", ")", ",", "+", "-", "*", "/", ".")


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is ``ident``, ``keyword``, ``number``, ``string``, ``op``,
    ``param`` or ``eof``; ``value`` is the case-folded identifier /
    keyword, the parsed literal, the operator spelling, or the parameter
    key (an ``int`` for ``?``, a ``str`` for ``:name``).
    """

    kind: str
    value: object
    line: int
    column: int

    def is_keyword(self, *words: str) -> bool:
        return self.kind == "keyword" and self.value in words

    def is_op(self, *ops: str) -> bool:
        return self.kind == "op" and self.value in ops

    def describe(self) -> str:
        if self.kind == "eof":
            return "end of input"
        return f"{self.kind} {self.value!r}"


def tokenize(text: str) -> list[Token]:
    """Lex ``text`` into a token list ending with an ``eof`` token."""
    tokens: list[Token] = []
    position = 0
    line = 1
    line_start = 0
    length = len(text)
    positional_count = 0

    def column() -> int:
        return position - line_start + 1

    while position < length:
        char = text[position]

        if char == "\n":
            line += 1
            position += 1
            line_start = position
            continue
        if char in " \t\r":
            position += 1
            continue

        # Comments.
        if text.startswith("--", position):
            end = text.find("\n", position)
            position = length if end == -1 else end
            continue
        if text.startswith("/*", position):
            end = text.find("*/", position + 2)
            if end == -1:
                raise LexError("unterminated block comment", line, column())
            for i in range(position, end):
                if text[i] == "\n":
                    line += 1
                    line_start = i + 1
            position = end + 2
            continue

        # String literals.
        if char == "'":
            start_line, start_col = line, column()
            position += 1
            pieces: list[str] = []
            while True:
                if position >= length:
                    raise LexError("unterminated string literal", start_line, start_col)
                current = text[position]
                if current == "'":
                    if position + 1 < length and text[position + 1] == "'":
                        pieces.append("'")
                        position += 2
                        continue
                    position += 1
                    break
                if current == "\n":
                    line += 1
                    line_start = position + 1
                pieces.append(current)
                position += 1
            tokens.append(Token("string", "".join(pieces), start_line, start_col))
            continue

        # Numbers.
        if char.isdigit() or (char == "." and position + 1 < length and text[position + 1].isdigit()):
            start_col = column()
            start = position
            seen_dot = False
            while position < length and (text[position].isdigit() or (text[position] == "." and not seen_dot)):
                if text[position] == ".":
                    # A dot not followed by a digit terminates the number
                    # (it is the qualification operator: ``t.col``).
                    if position + 1 >= length or not text[position + 1].isdigit():
                        break
                    seen_dot = True
                position += 1
            literal = text[start:position]
            value: object = float(literal) if "." in literal else int(literal)
            tokens.append(Token("number", value, line, start_col))
            continue

        # Identifiers and keywords.
        if char.isalpha() or char == "_":
            start_col = column()
            start = position
            while position < length and (text[position].isalnum() or text[position] == "_"):
                position += 1
            word = text[start:position].lower()
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line, start_col))
            continue

        # Parameter placeholders: ``?`` (positional) and ``:name`` (named).
        if char == "?":
            tokens.append(Token("param", positional_count, line, column()))
            positional_count += 1
            position += 1
            continue
        if char == ":":
            start_col = column()
            position += 1
            start = position
            while position < length and (text[position].isalnum() or text[position] == "_"):
                position += 1
            name = text[start:position]
            if not name or name[0].isdigit():
                raise LexError("expected parameter name after ':'", line, start_col)
            tokens.append(Token("param", name.lower(), line, start_col))
            continue

        # Quoted identifiers ("name") — kept verbatim, case preserved.
        if char == '"':
            start_line, start_col = line, column()
            end = text.find('"', position + 1)
            if end == -1:
                raise LexError("unterminated quoted identifier", start_line, start_col)
            tokens.append(Token("ident", text[position + 1 : end], start_line, start_col))
            position = end + 1
            continue

        # Operators.
        for op in OPERATORS:
            if text.startswith(op, position):
                spelling = "<>" if op == "!=" else op
                tokens.append(Token("op", spelling, line, column()))
                position += len(op)
                break
        else:
            raise LexError(f"unexpected character {char!r}", line, column())

    tokens.append(Token("eof", None, line, column()))
    return tokens
