"""Query classification (paper §2.2).

Two orthogonal taxonomies:

* **Kim types** per nested block — A (aggregate, uncorrelated),
  N (no aggregate, uncorrelated), J (correlated, no aggregate),
  JA (correlated aggregate).  A/JA blocks are *scalar subqueries*;
  N/J blocks are *table subqueries* (EXISTS/IN/... linking).
* **Muralikrishna structure** over the whole query — SIMPLE (exactly one
  nested block), LINEAR (several blocks, at most one nested within any
  block), TREE (some block has two or more blocks nested at the same
  level); NONE if the query has no nesting.

On top of these, the classifier reports the paper's two problem markers:
``disjunctive_linking`` (a linking predicate occurs inside a disjunction)
and ``disjunctive_correlation`` (a correlation predicate occurs inside a
disjunction in the inner block).

Classification operates on the *canonical translation* — the algebra —
because correlation is visible there as free attributes, with no extra
name-resolution machinery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.algebra import expr as E
from repro.algebra import ops as L


class KimType(enum.Enum):
    A = "A"
    N = "N"
    J = "J"
    JA = "JA"


class NestingStructure(enum.Enum):
    NONE = "none"
    SIMPLE = "simple"
    LINEAR = "linear"
    TREE = "tree"


@dataclass
class BlockInfo:
    """Classification of one nested query block."""

    plan: L.Operator
    kim_type: KimType
    depth: int  # 1 = directly nested in the root block
    correlated: bool
    has_aggregate: bool
    disjunctive_linking: bool
    disjunctive_correlation: bool
    children: list["BlockInfo"] = field(default_factory=list)


@dataclass
class QueryClass:
    """Classification of a whole query."""

    blocks: list[BlockInfo]
    structure: NestingStructure
    disjunctive_linking: bool
    disjunctive_correlation: bool

    @property
    def nested_block_count(self) -> int:
        return len(self.blocks)

    def describe(self) -> str:
        if not self.blocks:
            return "flat query (no nesting)"
        types = "/".join(sorted({b.kim_type.value for b in self.blocks}))
        markers = []
        if self.disjunctive_linking:
            markers.append("disjunctive linking")
        if self.disjunctive_correlation:
            markers.append("disjunctive correlation")
        marker_text = f" with {', '.join(markers)}" if markers else ""
        return f"{self.structure.value} nested query, type {types}{marker_text}"


def classify(plan: L.Operator) -> QueryClass:
    """Classify the canonical translation of a query."""
    top_blocks = _collect_blocks(plan, depth=1)
    all_blocks: list[BlockInfo] = []

    def flatten(blocks: list[BlockInfo]) -> None:
        for block in blocks:
            all_blocks.append(block)
            flatten(block.children)

    flatten(top_blocks)
    structure = _structure_of(plan, top_blocks, all_blocks)
    return QueryClass(
        blocks=all_blocks,
        structure=structure,
        disjunctive_linking=any(b.disjunctive_linking for b in all_blocks),
        disjunctive_correlation=any(b.disjunctive_correlation for b in all_blocks),
    )


def _collect_blocks(plan: L.Operator, depth: int) -> list[BlockInfo]:
    """Find nested blocks of ``plan`` (not descending into them here)."""
    blocks: list[BlockInfo] = []
    for node in plan.iter_dag():
        for expression in node.exprs():
            for sub, linking_disjunctive in _subqueries_with_context(expression):
                blocks.append(_classify_block(sub.plan, depth, linking_disjunctive))
    return blocks


def _subqueries_with_context(expression: E.Expr):
    """Yield (subquery expr, occurs-under-a-disjunction) pairs."""

    def visit(node: E.Expr, under_or: bool):
        if isinstance(node, E.SubqueryExpr):
            yield node, under_or
            # Do not descend into the plan; handled recursively elsewhere.
            for child in node.children():
                yield from visit(child, under_or)
            return
        next_under_or = under_or or isinstance(node, E.Or)
        for child in node.children():
            yield from visit(child, next_under_or)

    yield from visit(expression, False)


def _classify_block(plan: L.Operator, depth: int, linking_disjunctive: bool) -> BlockInfo:
    correlated = bool(plan.free_attrs())
    has_aggregate = _has_top_aggregate(plan)
    if has_aggregate:
        kim = KimType.JA if correlated else KimType.A
    else:
        kim = KimType.J if correlated else KimType.N
    disjunctive_correlation = _has_disjunctive_correlation(plan)
    children = _collect_blocks(plan, depth + 1)
    return BlockInfo(
        plan=plan,
        kim_type=kim,
        depth=depth,
        correlated=correlated,
        has_aggregate=has_aggregate,
        disjunctive_linking=linking_disjunctive,
        disjunctive_correlation=disjunctive_correlation,
        children=children,
    )


def _has_top_aggregate(plan: L.Operator) -> bool:
    """Does the block compute a top-level aggregate (type A/JA)?"""
    node = plan
    while isinstance(node, (L.Project, L.Map, L.Rename, L.Distinct, L.Limit, L.Sort)):
        node = node.child
    return isinstance(node, (L.ScalarAggregate, L.GroupBy))


def _has_disjunctive_correlation(plan: L.Operator) -> bool:
    """Does a correlation predicate occur under a disjunction?

    A correlation predicate of a block is any predicate expression that
    references the block's free attributes.
    """
    free = plan.free_attrs()
    if not free:
        return False
    for node in plan.iter_dag():
        for expression in node.exprs():
            for disjunct_parent in expression.walk():
                if isinstance(disjunct_parent, E.Or):
                    for item in disjunct_parent.items:
                        if item.free_attrs() & free:
                            return True
    return False


def _structure_of(
    root: L.Operator, top_blocks: list[BlockInfo], all_blocks: list[BlockInfo]
) -> NestingStructure:
    if not all_blocks:
        return NestingStructure.NONE
    if len(all_blocks) == 1:
        return NestingStructure.SIMPLE
    # Tree: some block (or the root) directly contains >= 2 nested blocks.
    if len(top_blocks) >= 2:
        return NestingStructure.TREE
    if any(len(block.children) >= 2 for block in all_blocks):
        return NestingStructure.TREE
    return NestingStructure.LINEAR
