"""Canonical translation: bound SQL → algebra.

This implements the paper's starting point (§3): each query block becomes
one algebraic expression; a nested block in the WHERE clause becomes a
nested algebraic expression inside the selection subscript
(:class:`~repro.algebra.expr.ScalarSubquery` & friends).  The translation
is deliberately *naïve* — cross products for the FROM list, one selection
carrying the whole WHERE — because join ordering, pushdown and unnesting
are optimizer passes.

Name resolution
---------------
Each table instance receives a fresh qualifier ``q0, q1, …``; its columns
are renamed ``q{n}.column``, making attribute names globally unique
across all blocks (the property every later pass relies on).  A name is
resolved in the innermost block first and then outward — an outward hit
is a *correlation*, visible to the algebra as a free attribute of the
inner plan.  Per the paper's stated limitation, correlation may only
reach the directly enclosing block; we verify this and reject deeper
references.

Each block additionally receives a block qualifier ``b{n}`` used to name
aggregate outputs (``b1.agg0``), keeping those unique too.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra import expr as E
from repro.algebra import ops as L
from repro.algebra.aggregates import STAR, AggSpec
from repro.errors import BindError, TranslationError
from repro.sql import ast
from repro.storage.catalog import Catalog
from repro.storage.schema import Schema

AGGREGATE_NAMES = frozenset(["count", "sum", "avg", "min", "max"])


@dataclass
class TranslationResult:
    """The translated plan plus presentation metadata.

    ``plan`` produces qualified attribute names; ``output_names`` are the
    user-visible column labels, positionally matching the plan schema.
    """

    plan: L.Operator
    output_names: tuple[str, ...]

    def presentation_schema(self) -> Schema:
        return Schema(self.output_names)


def translate(
    stmt: ast.SelectStmt,
    catalog: Catalog,
    views: dict[str, ast.SelectStmt] | None = None,
) -> TranslationResult:
    """Translate a parsed statement into its canonical algebraic form.

    ``views`` maps view names to parsed definitions; a FROM-list
    reference to a view inlines it like a derived table.
    """
    translator = _Translator(catalog, views)
    plan, output_names = translator.translate_block(stmt, parent=None, top_level=True)
    return TranslationResult(plan, tuple(output_names))


class _Counter:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def next(self, prefix: str) -> str:
        self.value += 1
        return f"{prefix}{self.value}"


class _Scope:
    """Name resolution for one query block, chained to its parent."""

    def __init__(self, parent: "_Scope | None"):
        self.parent = parent
        #: binding name (alias or table) -> (qualifier, tuple of base names)
        self.tables: dict[str, tuple[str, tuple[str, ...]]] = {}
        #: base column name -> list of qualified names (ambiguity check)
        self.columns: dict[str, list[str]] = {}
        self.order: list[str] = []  # binding names in FROM order

    def add_table(self, binding: str, qualifier: str, base_names: tuple[str, ...]):
        binding = binding.lower()
        if binding in self.tables:
            raise BindError(f"duplicate table binding {binding!r} in FROM list")
        self.tables[binding] = (qualifier, base_names)
        self.order.append(binding)
        for base in base_names:
            self.columns.setdefault(base.lower(), []).append(f"{qualifier}.{base}")

    def resolve(self, name: ast.Name) -> tuple[str, int]:
        """Resolve to a qualified attribute name.

        Returns ``(qualified_name, depth)`` where depth 0 is the current
        block and 1 the direct parent (a correlation).
        """
        scope: _Scope | None = self
        depth = 0
        while scope is not None:
            qualified = scope._resolve_local(name)
            if qualified is not None:
                return qualified, depth
            scope = scope.parent
            depth += 1
        raise BindError(f"unknown column {name.sql()!r}")

    def _resolve_local(self, name: ast.Name) -> str | None:
        if name.qualifier is not None:
            entry = self.tables.get(name.qualifier.lower())
            if entry is None:
                return None
            qualifier, base_names = entry
            for base in base_names:
                if base.lower() == name.name.lower():
                    return f"{qualifier}.{base}"
            raise BindError(
                f"table {name.qualifier!r} has no column {name.name!r}"
            )
        candidates = self.columns.get(name.name.lower(), [])
        if len(candidates) > 1:
            raise BindError(f"ambiguous column reference {name.name!r}")
        if candidates:
            return candidates[0]
        return None

    def all_columns(self, table_filter: str | None = None) -> list[tuple[str, str]]:
        """(qualified, base) pairs in FROM order, optionally one table."""
        out: list[tuple[str, str]] = []
        for binding in self.order:
            if table_filter is not None and binding != table_filter:
                continue
            qualifier, base_names = self.tables[binding]
            for base in base_names:
                out.append((f"{qualifier}.{base}", base))
        if table_filter is not None and table_filter not in self.tables:
            raise BindError(f"unknown table {table_filter!r} in star expansion")
        return out


class _Translator:
    def __init__(self, catalog: Catalog, views: dict[str, ast.SelectStmt] | None = None):
        self.catalog = catalog
        self.views = {name.lower(): stmt for name, stmt in (views or {}).items()}
        self.table_counter = _Counter()
        self.block_counter = _Counter()
        self._view_stack: list[str] = []
        #: stack of CTE layers (WITH clauses), innermost last
        self._cte_scopes: list[dict[str, ast.SelectStmt]] = []

    # -- block translation -------------------------------------------------

    def translate_block(
        self, stmt, parent: _Scope | None, top_level: bool
    ) -> tuple[L.Operator, list[str]]:
        if isinstance(stmt, ast.SetOpStmt):
            return self._translate_set_operation(stmt, parent, top_level)
        if stmt.ctes:
            layer: dict[str, ast.SelectStmt] = {}
            for cte_name, definition in stmt.ctes:
                key = cte_name.lower()
                if key in layer:
                    raise TranslationError(f"duplicate CTE name {cte_name!r}")
                layer[key] = definition
            self._cte_scopes.append(layer)
            try:
                return self._translate_block_body(stmt, parent, top_level)
            finally:
                self._cte_scopes.pop()
        return self._translate_block_body(stmt, parent, top_level)

    def _translate_set_operation(
        self, stmt: ast.SetOpStmt, parent: _Scope | None, top_level: bool
    ) -> tuple[L.Operator, list[str]]:
        """UNION [ALL] / INTERSECT / EXCEPT of two blocks.

        Columns align positionally (SQL); output labels come from the
        left operand.  Correlation into set-operation operands is not
        supported (``parent`` is not forwarded), matching standard SQL
        derived-table scoping.
        """
        left_plan, left_names = self.translate_block(stmt.left, None, False)
        right_plan, right_names = self.translate_block(stmt.right, None, False)
        if len(left_plan.schema) != len(right_plan.schema):
            raise TranslationError(
                f"set operation arity mismatch: {len(left_plan.schema)} vs "
                f"{len(right_plan.schema)} columns"
            )
        # Align the right side's attribute names with the left's so the
        # combined plan has one consistent schema.
        mapping = {
            old: new
            for old, new in zip(right_plan.schema.names, left_plan.schema.names)
            if old != new
        }
        if mapping:
            right_plan = L.Rename(right_plan, mapping)
        if stmt.op == "union":
            node = L.UnionAll(left_plan, right_plan) if stmt.all else L.Union(left_plan, right_plan)
        elif stmt.op == "intersect":
            node = L.Intersect(left_plan, right_plan)
        else:
            node = L.Difference(left_plan, right_plan)
        return node, list(left_names)

    def _lookup_named_query(self, name: str):
        """Resolve a FROM name against CTEs (innermost first), then views."""
        key = name.lower()
        for layer in reversed(self._cte_scopes):
            if key in layer:
                return layer[key], f"cte:{key}"
        if key in self.views:
            return self.views[key], key
        return None

    def _translate_block_body(
        self, stmt: ast.SelectStmt, parent: _Scope | None, top_level: bool
    ) -> tuple[L.Operator, list[str]]:
        scope = _Scope(parent)
        block_id = self.block_counter.next("b")

        # FROM: scans (or derived tables) with fresh qualifiers, combined
        # by cross products.
        plan: L.Operator | None = None
        for ref in stmt.tables:
            qualifier = self.table_counter.next("q")
            view_name = None
            block = ref.subquery
            if block is None:
                named = self._lookup_named_query(ref.table)
                if named is not None:
                    # Inline the CTE/view like a derived table aliased to
                    # the binding name; cyclic definitions are rejected.
                    block, view_name = named
                    if view_name in self._view_stack:
                        raise TranslationError(
                            f"cyclic view reference through {view_name!r}"
                        )
            if block is not None:
                # Derived table / view: translate the block (no
                # correlation into the enclosing FROM list — standard
                # SQL, no LATERAL) and re-qualify its output columns
                # under the alias.
                if view_name is not None:
                    self._view_stack.append(view_name)
                try:
                    sub_plan, sub_names = self.translate_block(
                        block, parent=None, top_level=False
                    )
                finally:
                    if view_name is not None:
                        self._view_stack.pop()
                mapping = {
                    old: f"{qualifier}.{new}"
                    for old, new in zip(sub_plan.schema.names, sub_names)
                }
                source: L.Operator = L.Rename(sub_plan, mapping)
                base_names = tuple(sub_names)
            else:
                table = self.catalog.table(ref.table)
                source = L.Scan(ref.table, table.schema.qualify(qualifier), qualifier)
                base_names = table.schema.names
            scope.add_table(ref.binding_name, qualifier, base_names)
            plan = source if plan is None else L.CrossProduct(plan, source)
        if plan is None:
            raise TranslationError("FROM list must not be empty")

        # WHERE: a single selection with (possibly nested) predicate.
        if stmt.where is not None:
            predicate = self.translate_expr(stmt.where, scope)
            plan = L.Select(plan, predicate)

        if self._is_aggregate_block(stmt):
            return self._translate_aggregate_block(stmt, scope, plan, block_id)

        if stmt.group_by or stmt.having is not None:
            raise TranslationError("GROUP BY/HAVING require aggregates in the select list")

        return self._translate_plain_block(stmt, scope, plan, block_id, top_level)

    def _is_aggregate_block(self, stmt: ast.SelectStmt) -> bool:
        if stmt.group_by:
            return True
        for item in stmt.items:
            if isinstance(item.expr, ast.FuncCall) and item.expr.name in AGGREGATE_NAMES:
                return True
        return False

    # -- plain (non-aggregate) blocks ----------------------------------------------

    def _translate_plain_block(
        self,
        stmt: ast.SelectStmt,
        scope: _Scope,
        plan: L.Operator,
        block_id: str,
        top_level: bool,
    ) -> tuple[L.Operator, list[str]]:
        # Expand the select list into (qualified source attr, output name).
        source_names: list[str] = []
        output_names: list[str] = []
        expr_index = 0
        for item in stmt.items:
            if isinstance(item.expr, ast.Star):
                for qualified, base in scope.all_columns(item.expr.qualifier):
                    source_names.append(qualified)
                    output_names.append(base)
                continue
            if isinstance(item.expr, ast.Name):
                qualified, depth = scope.resolve(item.expr)
                if depth > 0:
                    raise TranslationError(
                        "correlated column in select list is not supported"
                    )
                source_names.append(qualified)
                # Use the catalog's original casing, not the lexer's fold.
                output_names.append(item.alias or qualified.rsplit(".", 1)[-1])
                continue
            # Computed item: materialise via a map operator.
            expr_index += 1
            computed_name = f"{block_id}.expr{expr_index}"
            expression = self.translate_expr(item.expr, scope)
            plan = L.Map(plan, computed_name, expression)
            source_names.append(computed_name)
            output_names.append(item.alias or f"expr{expr_index}")

        # ORDER BY runs on qualified names before the final projection.
        if stmt.order_by:
            keys = []
            for order_item in stmt.order_by:
                keys.append((self._resolve_order_key(order_item.expr, stmt, scope, source_names, output_names), order_item.ascending))
            plan = L.Sort(plan, keys)

        plan = L.Project(plan, source_names)
        if stmt.distinct:
            plan = L.Distinct(plan)
        if stmt.limit is not None:
            plan = L.Limit(plan, stmt.limit)
        return plan, _dedupe(output_names)

    def _resolve_order_key(
        self,
        expr: ast.Node,
        stmt: ast.SelectStmt,
        scope: _Scope,
        source_names: list[str],
        output_names: list[str],
    ) -> str:
        if not isinstance(expr, ast.Name):
            raise TranslationError("ORDER BY supports plain column references only")
        if expr.qualifier is None:
            # Select-list aliases take precedence (SQL output-name scope).
            for source, output in zip(source_names, output_names):
                if output == expr.name:
                    return source
        qualified, depth = scope.resolve(expr)
        if depth > 0:
            raise TranslationError("ORDER BY cannot reference outer blocks")
        return qualified

    # -- aggregate blocks -------------------------------------------------------

    def _translate_aggregate_block(
        self,
        stmt: ast.SelectStmt,
        scope: _Scope,
        plan: L.Operator,
        block_id: str,
    ) -> tuple[L.Operator, list[str]]:
        if stmt.distinct:
            raise TranslationError("DISTINCT on an aggregate block is not supported")

        group_keys: list[str] = []
        for key_expr in stmt.group_by:
            if not isinstance(key_expr, ast.Name):
                raise TranslationError("GROUP BY supports plain column references only")
            qualified, depth = scope.resolve(key_expr)
            if depth > 0:
                raise TranslationError("GROUP BY cannot reference outer blocks")
            group_keys.append(qualified)

        aggregates: list[tuple[str, AggSpec]] = []
        source_names: list[str] = []
        output_names: list[str] = []
        agg_index = 0
        for item in stmt.items:
            expr = item.expr
            if isinstance(expr, ast.FuncCall) and expr.name in AGGREGATE_NAMES:
                agg_index += 1
                agg_name = f"{block_id}.agg{agg_index}"
                spec = self._translate_agg_call(expr, scope)
                aggregates.append((agg_name, spec))
                source_names.append(agg_name)
                output_names.append(item.alias or expr.name)
                continue
            if isinstance(expr, ast.Name):
                qualified, depth = scope.resolve(expr)
                if depth > 0:
                    raise TranslationError("correlated column in select list is not supported")
                if qualified not in group_keys:
                    raise TranslationError(
                        f"non-aggregated column {expr.sql()!r} must appear in GROUP BY"
                    )
                source_names.append(qualified)
                output_names.append(item.alias or qualified.rsplit(".", 1)[-1])
                continue
            raise TranslationError(
                "aggregate blocks support aggregate calls and grouped columns only"
            )

        if group_keys:
            plan = L.GroupBy(plan, group_keys, aggregates)
            if stmt.having is not None:
                having = self.translate_expr(stmt.having, scope)
                # HAVING may reference aggregate outputs by position name;
                # only plain predicates over group keys are supported here.
                plan = L.Select(plan, having)
        else:
            if stmt.having is not None:
                raise TranslationError("HAVING without GROUP BY is not supported")
            plan = L.ScalarAggregate(plan, aggregates)

        plan = L.Project(plan, source_names)
        if stmt.order_by:
            keys = []
            for order_item in stmt.order_by:
                keys.append(
                    (
                        self._resolve_aggregate_order_key(
                            order_item.expr, scope, source_names, output_names
                        ),
                        order_item.ascending,
                    )
                )
            plan = L.Sort(plan, keys)
        if stmt.limit is not None:
            plan = L.Limit(plan, stmt.limit)
        return plan, _dedupe(output_names)

    def _resolve_aggregate_order_key(
        self,
        expr: ast.Node,
        scope: _Scope,
        source_names: list[str],
        output_names: list[str],
    ) -> str:
        """ORDER BY on an aggregate block: aliases or grouped columns only."""
        if not isinstance(expr, ast.Name):
            raise TranslationError("ORDER BY supports plain column references only")
        if expr.qualifier is None:
            for source, output in zip(source_names, output_names):
                if output.lower() == expr.name.lower():
                    return source
        qualified, depth = scope.resolve(expr)
        if depth > 0 or qualified not in source_names:
            raise TranslationError(
                f"ORDER BY column {expr.sql()!r} must be a grouped column or "
                "an aggregate alias"
            )
        return qualified

    def _translate_agg_call(self, call: ast.FuncCall, scope: _Scope) -> AggSpec:
        if len(call.args) == 1 and isinstance(call.args[0], ast.Star):
            if call.name != "count":
                raise TranslationError(
                    f"{call.name.upper()}(*) is not valid SQL; only COUNT takes '*'"
                )
            return AggSpec(call.name, STAR, call.distinct)
        if len(call.args) != 1:
            raise TranslationError(f"{call.name.upper()} takes exactly one argument")
        if isinstance(call.args[0], ast.FuncCall) and call.args[0].name in AGGREGATE_NAMES:
            raise TranslationError("nested aggregate calls are not allowed")
        arg = self.translate_expr(call.args[0], scope)
        return AggSpec(call.name, arg, call.distinct)

    # -- expressions --------------------------------------------------------------

    def translate_expr(self, node: ast.Node, scope: _Scope) -> E.Expr:
        method = getattr(self, "_expr_" + type(node).__name__, None)
        if method is None:
            raise TranslationError(f"unsupported expression {type(node).__name__}")
        return method(node, scope)

    def _expr_Constant(self, node: ast.Constant, scope: _Scope) -> E.Expr:
        return E.Literal(node.value)

    def _expr_Parameter(self, node: ast.Parameter, scope: _Scope) -> E.Expr:
        return E.Parameter(node.key)

    def _expr_Name(self, node: ast.Name, scope: _Scope) -> E.Expr:
        # depth 0: local; depth 1: direct correlation; depth > 1: indirect
        # correlation.  The paper's unnesting equivalences are limited to
        # direct correlation (§1, Limitations) — the rewriter leaves
        # indirectly correlated blocks nested, and the engine evaluates
        # them through its chained environments.
        qualified, _depth = scope.resolve(node)
        return E.ColumnRef(qualified)

    def _expr_BinaryOp(self, node: ast.BinaryOp, scope: _Scope) -> E.Expr:
        left = self.translate_expr(node.left, scope)
        right = self.translate_expr(node.right, scope)
        if node.op in E.COMPARISON_OPS:
            return E.Comparison(node.op, left, right)
        return E.Arithmetic(node.op, left, right)

    def _expr_UnaryOp(self, node: ast.UnaryOp, scope: _Scope) -> E.Expr:
        operand = self.translate_expr(node.operand, scope)
        if node.op == "not":
            return E.Not(operand)
        return E.Negate(operand)

    def _expr_BoolOp(self, node: ast.BoolOp, scope: _Scope) -> E.Expr:
        items = [self.translate_expr(item, scope) for item in node.items]
        if node.op == "and":
            return E.conjunction(items)
        return E.disjunction(items)

    def _expr_LikeOp(self, node: ast.LikeOp, scope: _Scope) -> E.Expr:
        operand = self.translate_expr(node.operand, scope)
        return E.Like(operand, node.pattern, node.negated)

    def _expr_IsNullOp(self, node: ast.IsNullOp, scope: _Scope) -> E.Expr:
        return E.IsNull(self.translate_expr(node.operand, scope), node.negated)

    def _expr_InListOp(self, node: ast.InListOp, scope: _Scope) -> E.Expr:
        operand = self.translate_expr(node.operand, scope)
        items = tuple(self.translate_expr(item, scope) for item in node.items)
        return E.InList(operand, items, node.negated)

    def _expr_BetweenOp(self, node: ast.BetweenOp, scope: _Scope) -> E.Expr:
        operand = self.translate_expr(node.operand, scope)
        low = self.translate_expr(node.low, scope)
        high = self.translate_expr(node.high, scope)
        between = E.conjunction(
            [E.Comparison(">=", operand, low), E.Comparison("<=", operand, high)]
        )
        if node.negated:
            return E.Not(between)
        return between

    def _expr_CaseExpr(self, node: ast.CaseExpr, scope: _Scope) -> E.Expr:
        branches = tuple(
            (self.translate_expr(cond, scope), self.translate_expr(value, scope))
            for cond, value in node.branches
        )
        default = (
            self.translate_expr(node.default, scope)
            if node.default is not None
            else E.Literal(None)
        )
        return E.Case(branches, default)

    def _expr_FuncCall(self, node: ast.FuncCall, scope: _Scope) -> E.Expr:
        if node.name in AGGREGATE_NAMES:
            raise TranslationError(
                f"aggregate {node.name.upper()} outside an aggregate select list"
            )
        args = tuple(self.translate_expr(arg, scope) for arg in node.args)
        return E.FunctionCall(node.name, args)

    # -- subqueries -------------------------------------------------------------------

    def _scalar_subplan(self, stmt: ast.SelectStmt, scope: _Scope) -> L.Operator:
        """Translate a block that must yield a single column."""
        plan, output_names = self.translate_block(stmt, parent=scope, top_level=False)
        if len(plan.schema) != 1:
            raise TranslationError(
                f"subquery must return exactly one column, got {len(plan.schema)}"
            )
        return plan

    def _expr_Subquery(self, node: ast.Subquery, scope: _Scope) -> E.Expr:
        return E.ScalarSubquery(self._scalar_subplan(node.query, scope))

    def _expr_ExistsOp(self, node: ast.ExistsOp, scope: _Scope) -> E.Expr:
        plan, _ = self.translate_block(node.query, parent=scope, top_level=False)
        return E.Exists(plan, node.negated)

    def _expr_InSubqueryOp(self, node: ast.InSubqueryOp, scope: _Scope) -> E.Expr:
        operand = self.translate_expr(node.operand, scope)
        plan = self._scalar_subplan(node.query, scope)
        return E.InSubquery(operand, plan, node.negated)

    def _expr_QuantifiedOp(self, node: ast.QuantifiedOp, scope: _Scope) -> E.Expr:
        operand = self.translate_expr(node.operand, scope)
        plan = self._scalar_subplan(node.query, scope)
        return E.QuantifiedComparison(operand, node.op, node.quantifier, plan)


def _dedupe(names: list[str]) -> list[str]:
    """Make output labels unique by suffixing duplicates (``name_2``)."""
    seen: dict[str, int] = {}
    out: list[str] = []
    for name in names:
        count = seen.get(name, 0) + 1
        seen[name] = count
        out.append(name if count == 1 else f"{name}_{count}")
    return out
