"""Render an AST back to SQL text.

Used for logging, plan headers, and the parser round-trip property test
(``parse(render(parse(q))) == parse(q)``).  Rendering is fully
parenthesised where precedence could bite, and deterministic.
"""

from __future__ import annotations

from repro.errors import SqlError
from repro.sql import ast


def render(stmt) -> str:
    """Render a statement (SELECT or set-operation chain) as SQL."""
    if isinstance(stmt, ast.SetOpStmt):
        keyword = {"union": "UNION", "intersect": "INTERSECT", "except": "EXCEPT"}[stmt.op]
        if stmt.all:
            keyword += " ALL"
        return f"{render(stmt.left)} {keyword} {render(stmt.right)}"
    parts = []
    if stmt.ctes:
        definitions = ", ".join(
            f"{name} AS ({render(definition)})" for name, definition in stmt.ctes
        )
        parts.append(f"WITH {definitions}")
    parts.append("SELECT")
    if stmt.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_render_select_item(item) for item in stmt.items))
    parts.append("FROM")
    parts.append(", ".join(_render_table_ref(ref) for ref in stmt.tables))
    if stmt.where is not None:
        parts.append("WHERE")
        parts.append(render_expr(stmt.where))
    if stmt.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(render_expr(key) for key in stmt.group_by))
    if stmt.having is not None:
        parts.append("HAVING")
        parts.append(render_expr(stmt.having))
    if stmt.order_by:
        parts.append("ORDER BY")
        parts.append(
            ", ".join(
                render_expr(item.expr) + ("" if item.ascending else " DESC")
                for item in stmt.order_by
            )
        )
    if stmt.limit is not None:
        parts.append(f"LIMIT {stmt.limit}")
    return " ".join(parts)


def _render_select_item(item: ast.SelectItem) -> str:
    text = render_expr(item.expr)
    if item.alias:
        return f"{text} AS {item.alias}"
    return text


def _render_table_ref(ref: ast.TableRef) -> str:
    if ref.subquery is not None:
        return f"({render(ref.subquery)}) AS {ref.alias}"
    if ref.alias:
        return f"{ref.table} AS {ref.alias}"
    return ref.table


def render_expr(node: ast.Node) -> str:
    """Render one expression AST node."""
    handler = _HANDLERS.get(type(node))
    if handler is None:
        raise SqlError(f"cannot render {type(node).__name__}")
    return handler(node)


def _render_constant(node: ast.Constant) -> str:
    if node.value is None:
        return "NULL"
    if node.value is True:
        return "TRUE"
    if node.value is False:
        return "FALSE"
    if isinstance(node.value, str):
        return "'" + node.value.replace("'", "''") + "'"
    return str(node.value)


def _render_name(node: ast.Name) -> str:
    return node.sql()


def _render_parameter(node: ast.Parameter) -> str:
    return node.sql()


def _render_star(node: ast.Star) -> str:
    return f"{node.qualifier}.*" if node.qualifier else "*"


def _render_binary(node: ast.BinaryOp) -> str:
    return f"({render_expr(node.left)} {node.op} {render_expr(node.right)})"


def _render_unary(node: ast.UnaryOp) -> str:
    if node.op == "not":
        return f"(NOT {render_expr(node.operand)})"
    return f"(- {render_expr(node.operand)})"


def _render_bool(node: ast.BoolOp) -> str:
    keyword = " AND " if node.op == "and" else " OR "
    return "(" + keyword.join(render_expr(item) for item in node.items) + ")"


def _render_like(node: ast.LikeOp) -> str:
    keyword = "NOT LIKE" if node.negated else "LIKE"
    pattern = node.pattern.replace("'", "''")
    return f"({render_expr(node.operand)} {keyword} '{pattern}')"


def _render_is_null(node: ast.IsNullOp) -> str:
    keyword = "IS NOT NULL" if node.negated else "IS NULL"
    return f"({render_expr(node.operand)} {keyword})"


def _render_in_list(node: ast.InListOp) -> str:
    keyword = "NOT IN" if node.negated else "IN"
    items = ", ".join(render_expr(item) for item in node.items)
    return f"({render_expr(node.operand)} {keyword} ({items}))"


def _render_between(node: ast.BetweenOp) -> str:
    keyword = "NOT BETWEEN" if node.negated else "BETWEEN"
    return (
        f"({render_expr(node.operand)} {keyword} "
        f"{render_expr(node.low)} AND {render_expr(node.high)})"
    )


def _render_case(node: ast.CaseExpr) -> str:
    parts = ["CASE"]
    for cond, value in node.branches:
        parts.append(f"WHEN {render_expr(cond)} THEN {render_expr(value)}")
    if node.default is not None:
        parts.append(f"ELSE {render_expr(node.default)}")
    parts.append("END")
    return " ".join(parts)


def _render_func(node: ast.FuncCall) -> str:
    distinct = "DISTINCT " if node.distinct else ""
    args = ", ".join(render_expr(arg) for arg in node.args)
    return f"{node.name}({distinct}{args})"


def _render_subquery(node: ast.Subquery) -> str:
    return f"({render(node.query)})"


def _render_exists(node: ast.ExistsOp) -> str:
    keyword = "NOT EXISTS" if node.negated else "EXISTS"
    return f"({keyword} ({render(node.query)}))"


def _render_in_subquery(node: ast.InSubqueryOp) -> str:
    keyword = "NOT IN" if node.negated else "IN"
    return f"({render_expr(node.operand)} {keyword} ({render(node.query)}))"


def _render_quantified(node: ast.QuantifiedOp) -> str:
    return (
        f"({render_expr(node.operand)} {node.op} {node.quantifier.upper()} "
        f"({render(node.query)}))"
    )


_HANDLERS = {
    ast.Constant: _render_constant,
    ast.Name: _render_name,
    ast.Parameter: _render_parameter,
    ast.Star: _render_star,
    ast.BinaryOp: _render_binary,
    ast.UnaryOp: _render_unary,
    ast.BoolOp: _render_bool,
    ast.LikeOp: _render_like,
    ast.IsNullOp: _render_is_null,
    ast.InListOp: _render_in_list,
    ast.BetweenOp: _render_between,
    ast.CaseExpr: _render_case,
    ast.FuncCall: _render_func,
    ast.Subquery: _render_subquery,
    ast.ExistsOp: _render_exists,
    ast.InSubqueryOp: _render_in_subquery,
    ast.QuantifiedOp: _render_quantified,
}
