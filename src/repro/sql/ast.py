"""Abstract syntax tree for the supported SQL subset.

AST nodes are plain frozen dataclasses produced by the parser and
consumed by the binder/translator and the classifier.  They carry no name
resolution; ``Name("a", qualifier="t")`` is resolved only during
translation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional


class Node:
    """Base class for AST nodes."""

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal over expression children (not subqueries)."""
        yield self
        for child in self.children():
            yield from child.walk()

    def children(self) -> tuple["Node", ...]:
        return ()


# ---------------------------------------------------------------------------
# Scalar expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Name(Node):
    """A possibly qualified column reference: ``col`` or ``t.col``."""

    name: str
    qualifier: Optional[str] = None

    def sql(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name


@dataclass(frozen=True)
class Constant(Node):
    """A literal value; ``None`` encodes NULL."""

    value: object


@dataclass(frozen=True)
class Parameter(Node):
    """A prepared-statement placeholder: ``?`` or ``:name``.

    ``key`` is the 0-based occurrence index for positional parameters or
    the case-folded name for named ones.  One statement may use either
    style but not both (enforced by :mod:`repro.sql.parameters`).
    """

    key: object  # int (positional) | str (named)

    def sql(self) -> str:
        if isinstance(self.key, int):
            return "?"
        return f":{self.key}"


@dataclass(frozen=True)
class Star(Node):
    """``*`` (or ``t.*``) in a select list or inside COUNT."""

    qualifier: Optional[str] = None


@dataclass(frozen=True)
class BinaryOp(Node):
    """Comparison or arithmetic: op ∈ {=, <>, <, <=, >, >=, +, -, *, /}."""

    op: str
    left: Node
    right: Node

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class UnaryOp(Node):
    """``-expr`` or ``NOT expr``."""

    op: str  # "-" | "not"
    operand: Node

    def children(self):
        return (self.operand,)


@dataclass(frozen=True)
class BoolOp(Node):
    """N-ary AND / OR."""

    op: str  # "and" | "or"
    items: tuple[Node, ...]

    def children(self):
        return self.items


@dataclass(frozen=True)
class LikeOp(Node):
    """``operand [NOT] LIKE 'pattern'``."""

    operand: Node
    pattern: str
    negated: bool = False

    def children(self):
        return (self.operand,)


@dataclass(frozen=True)
class IsNullOp(Node):
    """``operand IS [NOT] NULL``."""

    operand: Node
    negated: bool = False

    def children(self):
        return (self.operand,)


@dataclass(frozen=True)
class InListOp(Node):
    """``operand [NOT] IN (value, ...)``."""

    operand: Node
    items: tuple[Node, ...]
    negated: bool = False

    def children(self):
        return (self.operand,) + self.items


@dataclass(frozen=True)
class BetweenOp(Node):
    """``operand [NOT] BETWEEN low AND high``."""

    operand: Node
    low: Node
    high: Node
    negated: bool = False

    def children(self):
        return (self.operand, self.low, self.high)


@dataclass(frozen=True)
class CaseExpr(Node):
    """Searched CASE."""

    branches: tuple[tuple[Node, Node], ...]
    default: Optional[Node] = None

    def children(self):
        flat: list[Node] = []
        for cond, value in self.branches:
            flat.extend((cond, value))
        if self.default is not None:
            flat.append(self.default)
        return tuple(flat)


@dataclass(frozen=True)
class FuncCall(Node):
    """A scalar or aggregate function call.

    The parser does not distinguish scalar from aggregate functions; the
    translator does, because only it knows the aggregate registry and the
    query position.  ``distinct`` and the :class:`Star` argument are only
    legal for aggregates.
    """

    name: str
    args: tuple[Node, ...]
    distinct: bool = False

    def children(self):
        return tuple(arg for arg in self.args if not isinstance(arg, Star))


# ---------------------------------------------------------------------------
# Subquery expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Subquery(Node):
    """A parenthesised query block used as a scalar expression."""

    query: "SelectStmt"


@dataclass(frozen=True)
class ExistsOp(Node):
    """``[NOT] EXISTS (subquery)``."""

    query: "SelectStmt"
    negated: bool = False


@dataclass(frozen=True)
class InSubqueryOp(Node):
    """``operand [NOT] IN (subquery)``."""

    operand: Node
    query: "SelectStmt"
    negated: bool = False

    def children(self):
        return (self.operand,)


@dataclass(frozen=True)
class QuantifiedOp(Node):
    """``operand op ANY|SOME|ALL (subquery)``."""

    operand: Node
    op: str
    quantifier: str  # "any" | "all"
    query: "SelectStmt"

    def children(self):
        return (self.operand,)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TableRef(Node):
    """One FROM-list entry: ``table [AS] alias`` or ``(subquery) alias``.

    A derived table (``subquery`` set, ``table`` empty) must carry an
    alias — SQL requires one, and the binder uses it as the binding name.
    """

    table: str
    alias: Optional[str] = None
    subquery: Optional["SelectStmt"] = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.table


@dataclass(frozen=True)
class SelectItem(Node):
    """One select-list entry: expression with optional alias, or ``*``."""

    expr: Node
    alias: Optional[str] = None

    def children(self):
        return (self.expr,)


@dataclass(frozen=True)
class OrderItem(Node):
    """One ORDER BY entry."""

    expr: Node
    ascending: bool = True

    def children(self):
        return (self.expr,)


@dataclass(frozen=True)
class SelectStmt(Node):
    """A query block: [WITH ...] SELECT [DISTINCT] ... FROM ... [WHERE ...]

    ``group_by``/``having`` are accepted by the parser for completeness
    (the paper's queries never use them on the outer block; the translator
    supports grouping without nested subqueries in HAVING).  ``ctes``
    holds ``WITH name AS (...)`` definitions, visible to this block and
    everything nested inside it (non-recursive).
    """

    items: tuple[SelectItem, ...]
    tables: tuple[TableRef, ...]
    where: Optional[Node] = None
    group_by: tuple[Node, ...] = ()
    having: Optional[Node] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False
    ctes: tuple[tuple[str, "SelectStmt"], ...] = ()

    def subqueries(self) -> Iterator["SelectStmt"]:
        """Directly nested query blocks (WHERE and HAVING and select list)."""
        roots = [item.expr for item in self.items]
        if self.where is not None:
            roots.append(self.where)
        if self.having is not None:
            roots.append(self.having)
        for root in roots:
            for node in _walk_with_subqueries(root):
                if isinstance(node, (Subquery, ExistsOp, InSubqueryOp, QuantifiedOp)):
                    yield node.query


def _walk_with_subqueries(node: Node) -> Iterator[Node]:
    """Walk an expression tree, not descending *into* nested blocks."""
    yield node
    for child in node.children():
        yield from _walk_with_subqueries(child)


@dataclass(frozen=True)
class SetOpStmt(Node):
    """``left UNION [ALL] | INTERSECT | EXCEPT right``.

    ``op`` ∈ {"union", "intersect", "except"}; ``all`` is only legal for
    UNION.  Operands may themselves be set operations (left-associative).
    """

    op: str
    left: "Statement"
    right: "Statement"
    all: bool = False


#: Anything the query parser may return at statement level.
Statement = "SelectStmt | SetOpStmt"


@dataclass(frozen=True)
class InsertStmt(Node):
    """``INSERT INTO table [(cols)] VALUES (...), ... | SELECT ...``."""

    table: str
    columns: tuple[str, ...] = ()  # empty = table order
    values: tuple[tuple[Node, ...], ...] = ()
    query: Optional["SelectStmt"] = None  # or a SetOpStmt


@dataclass(frozen=True)
class DeleteStmt(Node):
    """``DELETE FROM table [WHERE pred]``."""

    table: str
    where: Optional[Node] = None


@dataclass(frozen=True)
class UpdateStmt(Node):
    """``UPDATE table SET col = expr [, ...] [WHERE pred]``."""

    table: str
    assignments: tuple[tuple[str, Node], ...] = ()
    where: Optional[Node] = None


@dataclass(frozen=True)
class CreateIndexStmt(Node):
    """``CREATE INDEX name ON table (column) [USING hash|sorted]``."""

    name: str
    table: str
    column: str
    method: str = "hash"


@dataclass(frozen=True)
class DropIndexStmt(Node):
    """``DROP INDEX name``."""

    name: str
