"""Random nested-query workload generator.

Produces syntactically valid SQL over the RST schema covering the
paper's whole problem class — used by the fuzzing example, by stress
tests, and available to downstream users who want to exercise their own
optimizer changes against randomized disjunctive nesting.

The generator is seeded and purely functional: the same
:class:`QueryGenConfig` and seed always yield the same workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

AGGREGATES = [
    "COUNT(*)", "COUNT(B1)", "COUNT(DISTINCT B1)", "SUM(B1)", "AVG(B1)",
    "MIN(B1)", "MAX(B1)", "COUNT(DISTINCT *)",
]
LINK_OPS = ["=", "<>", "<", "<=", ">", ">="]
CORR_OPS = ["=", "=", "=", "<", ">"]  # equality-biased, like real workloads
OUTER_SIMPLE = ["A4 > 1500", "A4 < 700", "A3 = 2", "A1 <> 1", "A2 > 3"]
INNER_SIMPLE = ["B4 > 1500", "B3 = 2", "B1 < 3", "B4 < 500"]
THIRD_SIMPLE = ["C4 > 1500", "C3 = 1"]


@dataclass(frozen=True)
class QueryGenConfig:
    """Shape probabilities for the generator (must sum to ≤ 1 each)."""

    seed: int = 7
    #: probability that the outer linking predicate sits in a disjunction
    p_disjunctive_linking: float = 0.6
    #: probability that the inner correlation sits in a disjunction
    p_disjunctive_correlation: float = 0.5
    #: probability of a second nested block (tree query)
    p_tree: float = 0.2
    #: probability of a nested block inside the inner block (linear query)
    p_linear: float = 0.15
    #: probability of a quantified (EXISTS/IN/ANY/ALL) form instead of scalar
    p_quantified: float = 0.2
    #: probability of SELECT DISTINCT
    p_distinct: float = 0.5


class QueryGenerator:
    """Generates random nested queries over the RST schema."""

    def __init__(self, config: QueryGenConfig | None = None):
        self.config = config or QueryGenConfig()
        self.rng = random.Random(self.config.seed)

    def generate(self, count: int) -> list[str]:
        """Generate ``count`` queries (deterministic per seed)."""
        return [self.query() for _ in range(count)]

    def query(self) -> str:
        rng = self.rng
        config = self.config
        linking = self._linking_predicate()
        disjuncts = [linking]
        if rng.random() < config.p_disjunctive_linking:
            disjuncts.append(rng.choice(OUTER_SIMPLE))
            if rng.random() < config.p_tree:
                disjuncts.append(self._second_subquery())
            rng.shuffle(disjuncts)
            where = " OR ".join(disjuncts)
        else:
            where = linking
            if rng.random() < 0.4:
                where += f" AND {rng.choice(OUTER_SIMPLE)}"
        distinct = "DISTINCT " if rng.random() < config.p_distinct else ""
        return f"SELECT {distinct}* FROM r WHERE {where}"

    # -- pieces -----------------------------------------------------------

    def _linking_predicate(self) -> str:
        rng = self.rng
        if rng.random() < self.config.p_quantified:
            return self._quantified_predicate()
        op = rng.choice(LINK_OPS)
        return f"A1 {op} ({self._inner_block()})"

    def _quantified_predicate(self) -> str:
        rng = self.rng
        form = rng.choice(["exists", "not_exists", "in", "not_in", "any", "all"])
        inner = f"SELECT B1 FROM s WHERE {self._correlation()}"
        if form == "exists":
            return f"EXISTS ({inner})"
        if form == "not_exists":
            return f"NOT EXISTS ({inner})"
        if form == "in":
            return f"A1 IN ({inner})"
        if form == "not_in":
            return f"A1 NOT IN ({inner})"
        op = rng.choice(["<", "<=", ">", ">="])
        quantifier = "ANY" if form == "any" else "ALL"
        return f"A1 {op} {quantifier} ({inner})"

    def _inner_block(self) -> str:
        rng = self.rng
        aggregate = rng.choice(AGGREGATES)
        return f"SELECT {aggregate} FROM s WHERE {self._correlation()}"

    def _correlation(self) -> str:
        rng = self.rng
        config = self.config
        corr = f"A2 {rng.choice(CORR_OPS)} B2"
        if rng.random() < config.p_linear:
            nested = f"B3 = (SELECT COUNT(*) FROM t WHERE B4 = C2)"
            return f"{corr} OR {nested}"
        if rng.random() < config.p_disjunctive_correlation:
            parts = [corr, rng.choice(INNER_SIMPLE)]
            rng.shuffle(parts)
            return " OR ".join(parts)
        if rng.random() < 0.4:
            return f"{corr} AND {rng.choice(INNER_SIMPLE)}"
        return corr

    def _second_subquery(self) -> str:
        rng = self.rng
        op = rng.choice(LINK_OPS)
        agg = rng.choice(["COUNT(*)", "COUNT(DISTINCT *)", "MIN(C1)"])
        return f"A3 {op} (SELECT {agg} FROM t WHERE A4 = C2)"
