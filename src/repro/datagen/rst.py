"""The RST schema (paper §4.1).

Three tables R, S, T with four integer columns each (``A1..A4``,
``B1..B4``, ``C1..C4``).  The paper scales them independently with
scaling factors SF ∈ {1, 5, 10} = {10 000, 50 000, 100 000} rows; our
default maps SF 1 to 1 000 rows (see DESIGN.md §4 — canonical evaluation
is O(n·m) in any engine, so shrinking both axes preserves Fig. 7's
shape), configurable via :class:`RstConfig`.

Column distributions (the paper does not publish dbgen-style details, so
these are chosen to keep the paper's predicates meaningfully selective):

========  ==================  =============================================
column    distribution        role in the paper's queries
========  ==================  =============================================
``X1``    uniform [0, 20)     linking attribute (``A1 = count(...)``) —
                              small domain so the linking predicate
                              actually matches sometimes
``X2``    uniform [0, D)      correlation attribute (``A2 = B2``); the
                              domain D (default 500) fixes the expected
                              group size at rows/D
``X3``    uniform [0, 20)     secondary linking attribute (Q3)
``X4``    uniform [0, 3000)   simple-predicate attribute
                              (``A4 > 1500`` ≈ 50 % selective,
                              ``B4 > 1500`` likewise)
========  ==================  =============================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.storage.catalog import Catalog
from repro.storage.schema import Column, ColumnType, Schema
from repro.storage.table import Table


@dataclass(frozen=True)
class RstConfig:
    """Tuning knobs for the RST generator."""

    rows_per_sf: int = 1000
    link_domain: int = 20
    correlation_domain: int = 500
    simple_domain: int = 3000
    seed: int = 20070415  # ICDE 2007

    def row_count(self, scale_factor: float) -> int:
        return max(int(round(scale_factor * self.rows_per_sf)), 1)


def _table(name: str, prefix: str, rows: int, config: RstConfig, rng: random.Random) -> Table:
    schema = Schema(
        [
            Column(f"{prefix}1", ColumnType.INT),
            Column(f"{prefix}2", ColumnType.INT),
            Column(f"{prefix}3", ColumnType.INT),
            Column(f"{prefix}4", ColumnType.INT),
        ]
    )
    data = [
        (
            rng.randrange(config.link_domain),
            rng.randrange(config.correlation_domain),
            rng.randrange(config.link_domain),
            rng.randrange(config.simple_domain),
        )
        for _ in range(rows)
    ]
    return Table(schema, data, name=name)


def generate_rst(
    sf_r: float = 1,
    sf_s: float = 1,
    sf_t: float = 1,
    config: RstConfig | None = None,
) -> dict[str, Table]:
    """Generate the three RST tables at independent scale factors."""
    config = config or RstConfig()
    rng = random.Random(config.seed)
    return {
        "r": _table("r", "A", config.row_count(sf_r), config, rng),
        "s": _table("s", "B", config.row_count(sf_s), config, rng),
        "t": _table("t", "C", config.row_count(sf_t), config, rng),
    }


def rst_catalog(
    sf_r: float = 1,
    sf_s: float = 1,
    sf_t: float = 1,
    config: RstConfig | None = None,
) -> Catalog:
    """Generate RST tables and register them in a fresh catalog."""
    catalog = Catalog()
    for table in generate_rst(sf_r, sf_s, sf_t, config).values():
        catalog.register(table)
    return catalog
