"""Synthetic data generators for the paper's two evaluation schemas.

* :mod:`repro.datagen.rst` — the RST schema of §4.1: three tables R, S, T
  with four integer columns each, independently scaled;
* :mod:`repro.datagen.tpch` — a ``dbgen``-like generator for the TPC-H
  subset Query 2d touches (plus customer/orders/lineitem for
  completeness), with spec-faithful table-size ratios.

Both generators are fully deterministic given a seed.
"""

from repro.datagen.rst import RstConfig, generate_rst, rst_catalog
from repro.datagen.tpch import TpchConfig, generate_tpch, tpch_catalog

__all__ = [
    "RstConfig",
    "generate_rst",
    "rst_catalog",
    "TpchConfig",
    "generate_tpch",
    "tpch_catalog",
]
