"""A ``dbgen``-like TPC-H generator (the subset the paper evaluates).

Query 2d (the paper's introductory query, a disjunctive variant of TPC-H
Query 2) touches REGION, NATION, SUPPLIER, PART, PARTSUPP; we generate
those with the specification's table-size ratios and value distributions,
plus CUSTOMER / ORDERS / LINEITEM so the dataset also supports the usual
TPC-H warm-up queries in the examples:

=============  ======================  =================================
table          rows at scale factor 1  notes
=============  ======================  =================================
region         5                       fixed names (spec)
nation         25                      fixed names + region keys (spec)
supplier       10 000 · SF
part           200 000 · SF            p_type from the spec's word mill
partsupp       4 per part              spec's supplier-spreading formula
customer       150 000 · SF
orders         1 500 000 · SF          10 per customer
lineitem       ~4 per order            1–7 lines, spec distribution
=============  ======================  =================================

The paper runs SF ∈ {0.01 … 10} in C++; the Python harness maps that
axis down (DESIGN.md §4).  Generation is deterministic per seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.storage.catalog import Catalog
from repro.storage.schema import Column, ColumnType, Schema
from repro.storage.table import Table

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

#: (nation name, region key) per the TPC-H specification.
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

TYPE_SYLLABLE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLLABLE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLLABLE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

ORDER_STATUS = ["O", "F", "P"]


@dataclass(frozen=True)
class TpchConfig:
    """Size and randomness knobs for the generator."""

    scale_factor: float = 0.01
    seed: int = 19920522  # TPC-H v1 era
    include_order_pipeline: bool = True  # customer/orders/lineitem

    @property
    def suppliers(self) -> int:
        return max(int(round(10_000 * self.scale_factor)), 5)

    @property
    def parts(self) -> int:
        return max(int(round(200_000 * self.scale_factor)), 20)

    @property
    def customers(self) -> int:
        return max(int(round(150_000 * self.scale_factor)), 10)

    @property
    def orders(self) -> int:
        return self.customers * 10


def generate_tpch(config: TpchConfig | None = None) -> dict[str, Table]:
    """Generate the TPC-H subset at ``config.scale_factor``."""
    config = config or TpchConfig()
    rng = random.Random(config.seed)
    tables: dict[str, Table] = {}

    tables["region"] = Table(
        Schema([Column("r_regionkey", ColumnType.INT), Column("r_name", ColumnType.STRING)]),
        [(index, name) for index, name in enumerate(REGIONS)],
        name="region",
    )

    tables["nation"] = Table(
        Schema(
            [
                Column("n_nationkey", ColumnType.INT),
                Column("n_name", ColumnType.STRING),
                Column("n_regionkey", ColumnType.INT),
            ]
        ),
        [(index, name, region) for index, (name, region) in enumerate(NATIONS)],
        name="nation",
    )

    supplier_rows = []
    for key in range(1, config.suppliers + 1):
        supplier_rows.append(
            (
                key,
                f"Supplier#{key:09d}",
                _address(rng),
                rng.randrange(len(NATIONS)),
                _phone(rng),
                round(rng.uniform(-999.99, 9999.99), 2),
                _comment(rng),
            )
        )
    tables["supplier"] = Table(
        Schema(
            [
                Column("s_suppkey", ColumnType.INT),
                Column("s_name", ColumnType.STRING),
                Column("s_address", ColumnType.STRING),
                Column("s_nationkey", ColumnType.INT),
                Column("s_phone", ColumnType.STRING),
                Column("s_acctbal", ColumnType.FLOAT),
                Column("s_comment", ColumnType.STRING),
            ]
        ),
        supplier_rows,
        name="supplier",
    )

    part_rows = []
    for key in range(1, config.parts + 1):
        part_type = " ".join(
            (rng.choice(TYPE_SYLLABLE_1), rng.choice(TYPE_SYLLABLE_2), rng.choice(TYPE_SYLLABLE_3))
        )
        part_rows.append(
            (
                key,
                f"part {key}",
                f"Manufacturer#{rng.randrange(1, 6)}",
                part_type,
                rng.randrange(1, 51),
                round(rng.uniform(900.0, 2000.0), 2),
            )
        )
    tables["part"] = Table(
        Schema(
            [
                Column("p_partkey", ColumnType.INT),
                Column("p_name", ColumnType.STRING),
                Column("p_mfgr", ColumnType.STRING),
                Column("p_type", ColumnType.STRING),
                Column("p_size", ColumnType.INT),
                Column("p_retailprice", ColumnType.FLOAT),
            ]
        ),
        part_rows,
        name="part",
    )

    # PARTSUPP: 4 suppliers per part, spread by the spec's formula so a
    # part's suppliers are scattered over the supplier key space.
    partsupp_rows = []
    supplier_count = config.suppliers
    for part_key in range(1, config.parts + 1):
        for index in range(4):
            supp_key = (
                part_key
                + index * (supplier_count // 4 + (part_key - 1) % supplier_count)
            ) % supplier_count + 1
            partsupp_rows.append(
                (
                    part_key,
                    supp_key,
                    rng.randrange(1, 10_000),
                    round(rng.uniform(1.0, 1000.0), 2),
                )
            )
    tables["partsupp"] = Table(
        Schema(
            [
                Column("ps_partkey", ColumnType.INT),
                Column("ps_suppkey", ColumnType.INT),
                Column("ps_availqty", ColumnType.INT),
                Column("ps_supplycost", ColumnType.FLOAT),
            ]
        ),
        partsupp_rows,
        name="partsupp",
    )

    if config.include_order_pipeline:
        _generate_order_pipeline(tables, config, rng)
    return tables


def _generate_order_pipeline(tables: dict[str, Table], config: TpchConfig, rng: random.Random) -> None:
    customer_rows = []
    for key in range(1, config.customers + 1):
        customer_rows.append(
            (
                key,
                f"Customer#{key:09d}",
                _address(rng),
                rng.randrange(len(NATIONS)),
                _phone(rng),
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(["BUILDING", "AUTOMOBILE", "MACHINERY", "HOUSEHOLD", "FURNITURE"]),
            )
        )
    tables["customer"] = Table(
        Schema(
            [
                Column("c_custkey", ColumnType.INT),
                Column("c_name", ColumnType.STRING),
                Column("c_address", ColumnType.STRING),
                Column("c_nationkey", ColumnType.INT),
                Column("c_phone", ColumnType.STRING),
                Column("c_acctbal", ColumnType.FLOAT),
                Column("c_mktsegment", ColumnType.STRING),
            ]
        ),
        customer_rows,
        name="customer",
    )

    order_rows = []
    lineitem_rows = []
    for order_key in range(1, config.orders + 1):
        cust_key = rng.randrange(1, config.customers + 1)
        order_date = _date(rng)
        total = 0.0
        lines = rng.randrange(1, 8)
        for line_number in range(1, lines + 1):
            part_key = rng.randrange(1, config.parts + 1)
            supp_index = rng.randrange(4)
            supp_key = (
                part_key + supp_index * (config.suppliers // 4 + (part_key - 1) % config.suppliers)
            ) % config.suppliers + 1
            quantity = rng.randrange(1, 51)
            price = round(rng.uniform(900.0, 2000.0) * quantity / 10.0, 2)
            discount = round(rng.uniform(0.0, 0.1), 2)
            total += price * (1 - discount)
            lineitem_rows.append(
                (
                    order_key,
                    part_key,
                    supp_key,
                    line_number,
                    quantity,
                    price,
                    discount,
                    _date(rng),
                )
            )
        order_rows.append(
            (
                order_key,
                cust_key,
                rng.choice(ORDER_STATUS),
                round(total, 2),
                order_date,
                rng.randrange(1, 6),
            )
        )
    tables["orders"] = Table(
        Schema(
            [
                Column("o_orderkey", ColumnType.INT),
                Column("o_custkey", ColumnType.INT),
                Column("o_orderstatus", ColumnType.STRING),
                Column("o_totalprice", ColumnType.FLOAT),
                Column("o_orderdate", ColumnType.STRING),
                Column("o_shippriority", ColumnType.INT),
            ]
        ),
        order_rows,
        name="orders",
    )
    tables["lineitem"] = Table(
        Schema(
            [
                Column("l_orderkey", ColumnType.INT),
                Column("l_partkey", ColumnType.INT),
                Column("l_suppkey", ColumnType.INT),
                Column("l_linenumber", ColumnType.INT),
                Column("l_quantity", ColumnType.INT),
                Column("l_extendedprice", ColumnType.FLOAT),
                Column("l_discount", ColumnType.FLOAT),
                Column("l_shipdate", ColumnType.STRING),
            ]
        ),
        lineitem_rows,
        name="lineitem",
    )


def tpch_catalog(config: TpchConfig | None = None) -> Catalog:
    """Generate the TPC-H subset and register it in a fresh catalog."""
    catalog = Catalog()
    for table in generate_tpch(config).values():
        catalog.register(table)
    return catalog


# -- little string mills -------------------------------------------------------


def _address(rng: random.Random) -> str:
    length = rng.randrange(10, 30)
    return "".join(rng.choice("abcdefghijklmnopqrstuvwxyz ,.") for _ in range(length))


def _phone(rng: random.Random) -> str:
    return f"{rng.randrange(10, 35)}-{rng.randrange(100, 1000)}-{rng.randrange(100, 1000)}-{rng.randrange(1000, 10_000)}"


def _comment(rng: random.Random) -> str:
    words = ["carefully", "quickly", "final", "pending", "ironic", "deposits", "packages", "requests", "sleep", "haggle"]
    return " ".join(rng.choice(words) for _ in range(rng.randrange(4, 10)))


def _date(rng: random.Random) -> str:
    year = rng.randrange(1992, 1999)
    month = rng.randrange(1, 13)
    day = rng.randrange(1, 29)
    return f"{year:04d}-{month:02d}-{day:02d}"
