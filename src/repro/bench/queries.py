"""The paper's benchmark queries.

Q1–Q4 are the running examples of §3 over the RST schema; ``QUERY_2D``
is the introductory analytical query (a disjunctive variant of TPC-H
Query 2 — "European suppliers delivering a part at minimum supply cost
*or* with more than 2000 units on stock").  Column names follow standard
TPC-H spelling (``s_nationkey`` for the paper's ``s_n_key`` etc.).
"""

#: §3.1 — disjunctive linking (type JA, simple).
Q1 = """
SELECT DISTINCT *
FROM   r
WHERE  A1 = (SELECT COUNT(DISTINCT *) FROM s WHERE A2 = B2)
   OR  A4 > 1500
"""

#: §3.2 — disjunctive correlation (type JA, simple).
Q2 = """
SELECT DISTINCT *
FROM   r
WHERE  A1 = (SELECT COUNT(*) FROM s WHERE A2 = B2 OR B4 > 1500)
"""

#: §3.5 — tree query (two blocks nested at the same level).
Q3 = """
SELECT DISTINCT *
FROM   r
WHERE  A1 = (SELECT COUNT(DISTINCT *) FROM s WHERE A2 = B2)
   OR  A3 = (SELECT COUNT(DISTINCT *) FROM t WHERE A4 = C2)
"""

#: §3.6 — linear query (a block nested inside a nested block).
Q4 = """
SELECT DISTINCT *
FROM   r
WHERE  A1 = (SELECT COUNT(DISTINCT *)
             FROM   s
             WHERE  A2 = B2
                OR  B3 = (SELECT COUNT(DISTINCT *) FROM t WHERE B4 = C2))
"""

#: §1 — Query 2d on the TPC-H schema (disjunctive linking, MIN aggregate).
QUERY_2D = """
SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone, s_comment
FROM   part, supplier, partsupp, nation, region
WHERE  p_partkey = ps_partkey
  AND  s_suppkey = ps_suppkey
  AND  p_size = 15
  AND  p_type LIKE '%BRASS'
  AND  s_nationkey = n_nationkey
  AND  n_regionkey = r_regionkey
  AND  r_name = 'EUROPE'
  AND  (ps_supplycost = (SELECT MIN(ps_supplycost)
                         FROM   partsupp, supplier, nation, region
                         WHERE  s_suppkey = ps_suppkey
                           AND  p_partkey = ps_partkey
                           AND  s_nationkey = n_nationkey
                           AND  n_regionkey = r_regionkey
                           AND  r_name = 'EUROPE')
        OR ps_availqty > 2000)
ORDER BY s_acctbal DESC, n_name, s_name, p_partkey
"""

#: All RST queries by name (used by the harness and the examples).
RST_QUERIES = {"Q1": Q1, "Q2": Q2, "Q3": Q3, "Q4": Q4}
