"""Timed query runs and grid sweeps.

The paper aborts any execution after six hours and reports ``n/a``
(Fig. 7(b)).  :func:`run_cell` emulates this with a configurable
wall-clock budget enforced *inside* the engine
(:class:`~repro.errors.BudgetExceeded`), so a blown cell costs at most
the budget, not six hours.

Planning time is excluded from the measurement (the paper measures
execution of prepared plans); each measured run starts with a cold
execution context, mirroring the paper's cold-buffer setup as far as an
in-memory engine meaningfully can.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.engine import EvalOptions
from repro.errors import BudgetExceeded
from repro.optimizer import plan_query
from repro.storage.catalog import Catalog

#: Marker for cells that exceeded their budget (paper: "> 6 hours").
NA = "n/a"


@dataclass
class BenchResult:
    """One measured cell."""

    strategy: str
    seconds: float | None  # None = budget exceeded (printed as n/a)
    rows: int | None
    subquery_evals: int = 0
    subquery_cache_hits: int = 0

    @property
    def display(self) -> str:
        if self.seconds is None:
            return NA
        if self.seconds >= 100:
            return f"{self.seconds:.0f}"
        if self.seconds >= 1:
            return f"{self.seconds:.3g}"
        return f"{self.seconds:.3f}"


def run_cell(
    sql: str,
    catalog: Catalog,
    strategy: str,
    budget_seconds: float | None = 30.0,
    collect_stats: bool = False,
    vectorized: bool = False,
    planner=None,
) -> BenchResult:
    """Plan once, execute once, report wall-clock seconds (or n/a).

    ``planner(sql, catalog, strategy)`` overrides how the plan is
    obtained — the CLI passes a plan-cache-backed planner so repeated
    compares in one process skip re-planning.
    """
    planned = (planner or plan_query)(sql, catalog, strategy)
    options = EvalOptions(
        budget_seconds=budget_seconds,
        collect_stats=collect_stats,
        vectorized=vectorized,
    )
    start = time.perf_counter()
    try:
        table, ctx = planned.execute(catalog, options, with_context=True)
    except BudgetExceeded:
        return BenchResult(strategy, None, None)
    elapsed = time.perf_counter() - start
    return BenchResult(
        strategy,
        elapsed,
        len(table),
        subquery_evals=ctx.stats.subquery_evals,
        subquery_cache_hits=ctx.stats.subquery_cache_hits,
    )


@dataclass
class GridResult:
    """All cells of one figure: (scale key, strategy) → result."""

    title: str
    scale_keys: list = field(default_factory=list)
    strategies: list[str] = field(default_factory=list)
    cells: dict = field(default_factory=dict)  # (scale_key, strategy) -> BenchResult

    def record(self, scale_key, result: BenchResult) -> None:
        if scale_key not in self.scale_keys:
            self.scale_keys.append(scale_key)
        if result.strategy not in self.strategies:
            self.strategies.append(result.strategy)
        self.cells[(scale_key, result.strategy)] = result

    def get(self, scale_key, strategy: str) -> BenchResult | None:
        return self.cells.get((scale_key, strategy))

    def seconds(self, scale_key, strategy: str) -> float | None:
        cell = self.get(scale_key, strategy)
        return None if cell is None else cell.seconds

    def speedup(self, scale_key, slow: str, fast: str) -> float | None:
        """slow/fast runtime ratio for one scale point (None if n/a)."""
        slow_cell = self.seconds(scale_key, slow)
        fast_cell = self.seconds(scale_key, fast)
        if slow_cell is None or fast_cell is None or fast_cell == 0:
            return None
        return slow_cell / fast_cell


def run_grid(
    title: str,
    sql_for_scale,
    catalog_for_scale,
    scale_keys,
    strategies,
    budget_seconds: float | None = 30.0,
    progress=None,
    vectorized: bool = False,
) -> GridResult:
    """Sweep a (scale × strategy) grid.

    ``sql_for_scale(scale_key)`` and ``catalog_for_scale(scale_key)``
    supply the query text and data per scale point; catalogs are built
    once per scale point and shared by all strategies (the paper likewise
    varies only the execution strategy per data point).
    """
    grid = GridResult(title)
    for scale_key in scale_keys:
        catalog = catalog_for_scale(scale_key)
        sql = sql_for_scale(scale_key)
        for strategy in strategies:
            result = run_cell(sql, catalog, strategy, budget_seconds, vectorized=vectorized)
            grid.record(scale_key, result)
            if progress is not None:
                progress(scale_key, result)
    return grid
