"""Benchmark harness reproducing the paper's evaluation (§4, Fig. 7).

* :mod:`repro.bench.queries` — the paper's query texts (Q1–Q4, Query 2d);
* :mod:`repro.bench.harness` — timed single runs with the six-hour-abort
  emulation (``n/a`` cells) and grid sweeps over scale factors and
  strategies;
* :mod:`repro.bench.figures` — runners that print Figure 7(a)/(b)/(c)
  -shaped tables, used both by ``benchmarks/paper_tables.py`` and the
  pytest benchmark suite.
"""

from repro.bench.harness import BenchResult, GridResult, run_cell, run_grid, NA
from repro.bench.figures import (
    fig7a_q1,
    fig7b_q2d,
    fig7c_q2,
    format_rst_grid,
    format_tpch_row,
)
from repro.bench.report import grid_to_markdown, speedup_summary

__all__ = [
    "BenchResult",
    "GridResult",
    "run_cell",
    "run_grid",
    "NA",
    "fig7a_q1",
    "fig7b_q2d",
    "fig7c_q2",
    "format_rst_grid",
    "format_tpch_row",
    "grid_to_markdown",
    "speedup_summary",
]
