"""Markdown rendering of benchmark grids (for EXPERIMENTS.md).

Same data as :mod:`repro.bench.figures`' fixed-width layout, emitted as
GitHub-flavoured markdown tables plus a speedup summary line.
"""

from __future__ import annotations

import io

from repro.bench.harness import GridResult

_ROW_LABELS = {
    "s1": "S 1",
    "s2": "S 2",
    "s3": "S 3",
    "canonical": "Natix canonical",
    "unnested": "Natix unnested",
}


def grid_to_markdown(grid: GridResult) -> str:
    """Render a grid as a markdown table (strategies × scale keys)."""
    out = io.StringIO()
    keys = list(grid.scale_keys)
    header = ["system"] + [_scale_label(key) for key in keys]
    out.write("| " + " | ".join(header) + " |\n")
    out.write("|" + "---|" * len(header) + "\n")
    for strategy in grid.strategies:
        cells = [_ROW_LABELS.get(strategy, strategy)]
        for key in keys:
            cell = grid.get(key, strategy)
            cells.append(cell.display if cell else "—")
        out.write("| " + " | ".join(cells) + " |\n")
    return out.getvalue()


def speedup_summary(grid: GridResult, slow: str = "canonical", fast: str = "unnested") -> str:
    """One line: min/max speedup of ``fast`` over ``slow`` across cells.

    Cells where the slow strategy hit the budget are reported as a lower
    bound (``> budget/fast``-style), matching how the paper's ``n/a``
    rows can only strengthen the claim.
    """
    ratios = []
    lower_bounds = 0
    for key in grid.scale_keys:
        ratio = grid.speedup(key, slow, fast)
        if ratio is None:
            slow_cell = grid.get(key, slow)
            fast_cell = grid.get(key, fast)
            if slow_cell is not None and slow_cell.seconds is None and fast_cell and fast_cell.seconds:
                lower_bounds += 1
            continue
        ratios.append(ratio)
    if not ratios and not lower_bounds:
        return f"no comparable cells for {slow} vs {fast}"
    parts = []
    if ratios:
        parts.append(
            f"{fast} vs {slow}: {min(ratios):.1f}x – {max(ratios):.1f}x "
            f"over {len(ratios)} cells"
        )
    if lower_bounds:
        parts.append(f"{lower_bounds} cells where {slow} exceeded its budget (n/a)")
    return "; ".join(parts)


def _scale_label(key) -> str:
    if isinstance(key, tuple):
        return "×".join(str(part) for part in key)
    return str(key)
