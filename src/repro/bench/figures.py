"""Figure-7 runners and table formatting.

Each ``fig7*`` function sweeps the corresponding experiment grid and
returns a :class:`~repro.bench.harness.GridResult`; ``format_*`` renders
it in the layout of the paper's Figure 7 (systems as rows, scale factors
as columns, seconds in the cells, ``n/a`` for aborted runs).

Scale handling (DESIGN.md §4): the RST grids run SF1 × SF2 ∈ {1, 5, 10}²
like the paper, with the rows-per-SF knob deciding absolute sizes; the
TPC-H axis {0.01 … 10} maps to Python-feasible factors.
"""

from __future__ import annotations

import io
from typing import Sequence

from repro.bench.harness import GridResult, run_grid
from repro.bench.queries import Q1, Q2, QUERY_2D
from repro.datagen.rst import RstConfig, rst_catalog
from repro.datagen.tpch import TpchConfig, tpch_catalog

#: Fig. 7 row order: three commercial baselines, then the two Natix plans.
FIG7_STRATEGIES = ["s1", "s2", "s3", "canonical", "unnested"]

#: The paper's RST grid: (outer SF, inner SF).
RST_GRID = [(1, 1), (1, 5), (1, 10), (5, 1), (5, 5), (5, 10), (10, 1), (10, 5), (10, 10)]

#: Paper TPC-H axis → default Python-feasible axis (same spread, ~100×
#: smaller; see DESIGN.md §4).
TPCH_SF_MAP = {
    0.01: 0.002,
    0.05: 0.005,
    0.5: 0.01,
    1.0: 0.02,
    5.0: 0.05,
    10.0: 0.1,
}


def fig7a_q1(
    grid: Sequence[tuple[float, float]] = RST_GRID,
    strategies: Sequence[str] = FIG7_STRATEGIES,
    rst_config: RstConfig | None = None,
    budget_seconds: float | None = 30.0,
    progress=None,
) -> GridResult:
    """Figure 7(a): Q1 (disjunctive linking) over the RST grid."""
    config = rst_config or RstConfig()
    return run_grid(
        "Fig. 7(a) - Q1 (disjunctive linking), RST",
        lambda scale: Q1,
        lambda scale: rst_catalog(scale[0], scale[1], 1, config),
        list(grid),
        list(strategies),
        budget_seconds,
        progress,
    )


def fig7c_q2(
    grid: Sequence[tuple[float, float]] = RST_GRID,
    strategies: Sequence[str] = FIG7_STRATEGIES,
    rst_config: RstConfig | None = None,
    budget_seconds: float | None = 30.0,
    progress=None,
) -> GridResult:
    """Figure 7(c): Q2 (disjunctive correlation) over the RST grid."""
    config = rst_config or RstConfig()
    return run_grid(
        "Fig. 7(c) - Q2 (disjunctive correlation), RST",
        lambda scale: Q2,
        lambda scale: rst_catalog(scale[0], scale[1], 1, config),
        list(grid),
        list(strategies),
        budget_seconds,
        progress,
    )


def fig7b_q2d(
    paper_sfs: Sequence[float] = tuple(TPCH_SF_MAP),
    strategies: Sequence[str] = FIG7_STRATEGIES,
    sf_map: dict[float, float] | None = None,
    budget_seconds: float | None = 30.0,
    progress=None,
) -> GridResult:
    """Figure 7(b): Query 2d over the TPC-H scale-factor axis."""
    mapping = sf_map or TPCH_SF_MAP
    return run_grid(
        "Fig. 7(b) - Query 2d, TPC-H",
        lambda scale: QUERY_2D,
        lambda scale: tpch_catalog(
            TpchConfig(scale_factor=mapping[scale], include_order_pipeline=False)
        ),
        list(paper_sfs),
        list(strategies),
        budget_seconds,
        progress,
    )


# ---------------------------------------------------------------------------
# Formatting
# ---------------------------------------------------------------------------

_ROW_LABELS = {
    "s1": "S 1",
    "s2": "S 2",
    "s3": "S 3",
    "canonical": "Natix canonical",
    "unnested": "Natix unnested",
}


def format_rst_grid(grid: GridResult) -> str:
    """Render an RST grid in Fig. 7(a)/(c) layout (SF1 over SF2 columns)."""
    out = io.StringIO()
    out.write(f"{grid.title}\n")
    sf1_values = sorted({key[0] for key in grid.scale_keys})
    sf2_values = sorted({key[1] for key in grid.scale_keys})
    header1 = "SF1".ljust(18) + "".join(
        f"{sf1:^{8 * len(sf2_values)}}" for sf1 in sf1_values
    )
    header2 = "SF2".ljust(18) + "".join(
        "".join(f"{sf2:>8}" for sf2 in sf2_values) for _ in sf1_values
    )
    out.write(header1.rstrip() + "\n")
    out.write(header2.rstrip() + "\n")
    for strategy in grid.strategies:
        row = _ROW_LABELS.get(strategy, strategy).ljust(18)
        for sf1 in sf1_values:
            for sf2 in sf2_values:
                cell = grid.get((sf1, sf2), strategy)
                row += f"{cell.display if cell else '-':>8}"
        out.write(row.rstrip() + "\n")
    return out.getvalue()


def format_tpch_row(grid: GridResult) -> str:
    """Render the TPC-H sweep in Fig. 7(b) layout (SF columns)."""
    out = io.StringIO()
    out.write(f"{grid.title}\n")
    header = "TPC-H SF (paper)".ljust(18) + "".join(
        f"{key:>9}" for key in grid.scale_keys
    )
    out.write(header.rstrip() + "\n")
    for strategy in grid.strategies:
        row = _ROW_LABELS.get(strategy, strategy).ljust(18)
        for key in grid.scale_keys:
            cell = grid.get(key, strategy)
            row += f"{cell.display if cell else '-':>9}"
        out.write(row.rstrip() + "\n")
    return out.getvalue()
