#!/usr/bin/env python3
"""Plan gallery: reproduce the paper's plan figures as ASCII DAGs.

Prints, for each of the paper's running examples, the canonical plan and
the unnested bypass plan — the machine-generated counterparts of
Figures 2(a)/(c)/(d), 3(a)/(b), 5(a)/(b) and 6(a)/(c).

Run:  python examples/plan_gallery.py
"""

from repro import Database, UnnestOptions
from repro.algebra.explain import explain
from repro.bench.queries import Q1, Q2, Q3, Q4
from repro.datagen import RstConfig, generate_rst
from repro.rewrite import unnest
from repro.sql import parse, translate

FIGURES = [
    ("Q1 — disjunctive linking", Q1, "Fig. 2(a) canonical", "Fig. 2(c) unnested (Eqv. 2)"),
    ("Q2 — disjunctive correlation", Q2, "Fig. 3(a) canonical", "Fig. 3(b) unnested (Eqv. 4)"),
    ("Q3 — tree query", Q3, "Fig. 5(a) canonical", "Fig. 5(b) unnested"),
    ("Q4 — linear query", Q4, "Fig. 6(a) canonical", "Fig. 6(c) unnested (Eqv. 5 + Eqv. 1)"),
]


def main():
    db = Database()
    for table in generate_rst(1, 1, 1, RstConfig(rows_per_sf=100)).values():
        db.register(table)

    for title, sql, canonical_caption, unnested_caption in FIGURES:
        print("=" * 72)
        print(title)
        print(sql)
        translation = translate(parse(sql), db.catalog)

        print(f"--- {canonical_caption} " + "-" * 30)
        print(explain(translation.plan))

        print(f"--- {unnested_caption} " + "-" * 30)
        print(explain(unnest(translation.plan, UnnestOptions(strict=True))))

    # The Fig. 2(d) variant: evaluate the unnested subquery first and
    # bypass on the linking predicate (Equivalence 3).
    print("=" * 72)
    print("Q1 again, forcing the subquery disjunct first (Fig. 2(d), Eqv. 3):")
    translation = translate(parse(Q1), db.catalog)
    options = UnnestOptions(strict=True, disjunct_order="subquery_first")
    print(explain(unnest(translation.plan, options)))


if __name__ == "__main__":
    main()
