#!/usr/bin/env python3
"""The paper's RST workloads: Q1 (disjunctive linking), Q2 (disjunctive
correlation), Q3 (tree), Q4 (linear) — classification, plans, timings.

For each query the script prints its Kim/Muralikrishna classification,
runs canonical vs. unnested evaluation, and reports the speedup.  This
is a miniature of the paper's §4 study; the full Figure 7 grids live in
``benchmarks/paper_tables.py``.

Run:  python examples/rst_workloads.py [rows_per_sf]
"""

import sys
import time

from repro import Database
from repro.bench.queries import RST_QUERIES
from repro.datagen import RstConfig, generate_rst


def run_strategy(db, sql, strategy):
    planned = db.plan(sql, strategy)
    start = time.perf_counter()
    result = planned.execute(db.catalog)
    return time.perf_counter() - start, result


def main():
    rows_per_sf = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    config = RstConfig(rows_per_sf=rows_per_sf)

    db = Database()
    for table in generate_rst(1, 1, 1, config).values():
        db.register(table)
    print(
        f"RST instance: |R| = |S| = |T| = {rows_per_sf} rows "
        f"(paper §4.1, scaled for Python)\n"
    )

    for name, sql in RST_QUERIES.items():
        print("=" * 72)
        print(f"{name}: {db.classify(sql).describe()}")
        print(sql)

        canonical_time, canonical = run_strategy(db, sql, "canonical")
        unnested_time, unnested = run_strategy(db, sql, "unnested")
        assert canonical.bag_equals(unnested), f"{name}: strategies disagree!"

        speedup = canonical_time / unnested_time if unnested_time else float("inf")
        print(f"  canonical : {canonical_time:8.4f}s   ({len(canonical)} rows)")
        print(f"  unnested  : {unnested_time:8.4f}s")
        print(f"  speedup   : {speedup:8.1f}x")
        print()

    print("=" * 72)
    print("Unnested plan for Q4 (compare the paper's Fig. 6(c)):")
    print(db.explain(RST_QUERIES["Q4"], "unnested"))


if __name__ == "__main__":
    main()
