#!/usr/bin/env python3
"""Quickstart: unnesting a disjunctive nested query.

Builds a tiny in-memory database, runs the paper's Query Q1 shape
(disjunctive linking) through every evaluation strategy, and shows the
canonical vs. unnested plans side by side.

Run:  python examples/quickstart.py
"""

import random
import time

from repro import Database

QUERY = """
SELECT DISTINCT *
FROM   r
WHERE  A1 = (SELECT COUNT(DISTINCT *) FROM s WHERE A2 = B2)
   OR  A4 > 1500
"""


def build_database(rows: int = 2000, seed: int = 42) -> Database:
    """Two tables in the paper's RST style, seeded for reproducibility."""
    rng = random.Random(seed)

    def make_rows(count):
        return [
            (
                rng.randrange(20),    # linking attribute
                rng.randrange(200),   # correlation attribute
                rng.randrange(20),
                rng.randrange(3000),  # simple-predicate attribute
            )
            for _ in range(count)
        ]

    db = Database()
    db.create_table("r", ["A1", "A2", "A3", "A4"], make_rows(rows))
    db.create_table("s", ["B1", "B2", "B3", "B4"], make_rows(rows))
    return db


def main():
    db = build_database()

    print("=" * 72)
    print("Query (disjunctive linking — no classical technique unnests this):")
    print(QUERY)

    print("How the library classifies it:")
    print(" ", db.classify(QUERY).describe())
    print()

    print("-" * 72)
    print("Canonical plan (nested-loop subquery evaluation):")
    print(db.explain(QUERY, "canonical"))

    print("-" * 72)
    print("Unnested bypass plan (Equivalence 2, Fig. 2(c) of the paper):")
    print(db.explain(QUERY, "unnested"))

    print("-" * 72)
    print(f"{'strategy':<12} {'seconds':>10} {'rows':>7}")
    reference = None
    for strategy in ("canonical", "s2", "s3", "unnested", "auto"):
        planned = db.plan(QUERY, strategy)
        start = time.perf_counter()
        result = planned.execute(db.catalog)
        elapsed = time.perf_counter() - start
        print(f"{strategy:<12} {elapsed:>10.4f} {len(result):>7}")
        if reference is None:
            reference = result
        assert result.bag_equals(reference), "strategies must agree!"

    print()
    print("Sample rows:")
    print(reference.pretty(limit=5))


if __name__ == "__main__":
    main()
