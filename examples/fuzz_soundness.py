#!/usr/bin/env python3
"""Fuzz the rewriter: random nested queries, canonical vs. unnested.

Uses the seeded workload generator (`repro.datagen.queries`) to produce
queries spanning the paper's whole problem class — disjunctive linking,
disjunctive correlation, tree/linear nesting, quantified forms — and
checks for every one that the unnested bypass plan returns exactly the
canonical result (as a bag), under both the Eqv.-4 and the Eqv.-5
configuration.

Run:  python examples/fuzz_soundness.py [count] [seed]
"""

import random
import sys
import time

from repro.datagen import RstConfig, generate_rst
from repro.datagen.queries import QueryGenConfig, QueryGenerator
from repro.engine import execute_plan
from repro.rewrite import UnnestOptions, unnest
from repro.sql import classify, parse, translate
from repro.storage import Catalog


def main():
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else random.randrange(10_000)

    catalog = Catalog()
    for table in generate_rst(0.3, 0.25, 0.2, RstConfig(seed=seed)).values():
        catalog.register(table)

    generator = QueryGenerator(QueryGenConfig(seed=seed))
    shapes: dict[str, int] = {}
    start = time.perf_counter()

    for index, sql in enumerate(generator.generate(count), start=1):
        plan = translate(parse(sql), catalog).plan
        description = classify(plan).describe()
        shapes[description] = shapes.get(description, 0) + 1

        canonical = execute_plan(plan, catalog)
        for label, options in (
            ("default", UnnestOptions()),
            ("eqv5-only", UnnestOptions(enable_eqv4=False)),
            ("subquery-first", UnnestOptions(disjunct_order="subquery_first")),
        ):
            unnested = execute_plan(unnest(plan, options), catalog)
            if not canonical.bag_equals(unnested):
                print(f"MISMATCH ({label}) on query #{index}:\n{sql}")
                return 1
        if index % 20 == 0:
            print(f"  {index}/{count} queries checked ...")

    elapsed = time.perf_counter() - start
    print(f"\nAll {count} random queries agree (seed {seed}, {elapsed:.1f}s).")
    print("\nShapes covered:")
    for description, occurrences in sorted(shapes.items(), key=lambda kv: -kv[1]):
        print(f"  {occurrences:4d}  {description}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
