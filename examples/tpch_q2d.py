#!/usr/bin/env python3
"""Query 2d — the paper's introductory analytical query on TPC-H.

"All European suppliers that deliver a certain part with minimum supply
cost OR have more than 2000 units of it on stock."  The disjunction
around the scalar MIN-subquery is what defeats classical unnesting.

Generates a dbgen-like TPC-H instance, shows the query classification
and the unnested bypass plan, and compares all evaluation strategies —
a single column of the paper's Figure 7(b).

Run:  python examples/tpch_q2d.py [scale_factor]
      (default scale factor 0.01 ≈ 2 000 parts / 8 000 partsupp rows)
"""

import sys
import time

from repro import Database
from repro.bench.queries import QUERY_2D
from repro.datagen import TpchConfig, generate_tpch


def main():
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    config = TpchConfig(scale_factor=scale_factor, include_order_pipeline=False)

    print(f"Generating TPC-H subset at SF {scale_factor} ...")
    start = time.perf_counter()
    db = Database()
    for table in generate_tpch(config).values():
        db.register(table)
    print(f"  done in {time.perf_counter() - start:.2f}s:")
    for name in db.catalog.table_names():
        print(f"    {name:<10} {len(db.table(name)):>8} rows")
    print()

    print("Query 2d:")
    print(QUERY_2D)
    print("Classification:", db.classify(QUERY_2D).describe())
    print()

    print("Unnested bypass plan (Equivalence 2 over the join trees):")
    print(db.explain(QUERY_2D, "unnested"))

    print(f"{'strategy':<12} {'seconds':>10} {'rows':>6}   notes")
    reference = None
    notes = {
        "canonical": "nested-loop subquery per outer row",
        "s1": "commercial baseline: plain nested loops",
        "s2": "nested loops + memo on p_partkey (mostly distinct => weak)",
        "s3": "nested loops + cheap disjunct first",
        "unnested": "bypass plan (this paper)",
        "auto": "cost-based choice",
    }
    for strategy in ("canonical", "s1", "s2", "s3", "unnested", "auto"):
        planned = db.plan(QUERY_2D, strategy)
        start = time.perf_counter()
        result = planned.execute(db.catalog)
        elapsed = time.perf_counter() - start
        print(f"{strategy:<12} {elapsed:>10.4f} {len(result):>6}   {notes[strategy]}")
        if reference is None:
            reference = result
        assert result.bag_equals(reference), "strategies must agree!"

    print()
    print("Top answers (ordered by account balance, as in TPC-H Q2):")
    print(reference.pretty(limit=5))


if __name__ == "__main__":
    main()
